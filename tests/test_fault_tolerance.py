"""Fault-tolerance tests (PR 8): supervision, deterministic replay,
full-state checkpoints, and shared-segment hygiene.

The contract under test: worker failures are *invisible to the numerics*.
A :class:`FaultPlan` SIGKILLs / hangs / corrupts specific scheduled ops,
the pools respawn and replay them from banked snapshots, and the final
parameters are bit-identical to a fault-free run. When recovery is
exhausted (wildcard plans), training degrades to the in-process path with
one warning and still finishes on the exact trajectory the worker state
implies — leaving zero leaked segments and zero zombie children. Full
state checkpoints resume bit-for-bit and reject corrupt or mismatched
files before touching any array.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.graphs import (
    SharedGraphStore,
    StaleHandleError,
    attach_classification_task,
    owned_segment_count,
    sbm_graph,
    shared_memory_available,
    sweep_leaked_segments,
)
from repro.models import GNNConfig, MaxKGNN
from repro.sparse import ops
from repro.training import (
    CheckpointError,
    Engine,
    FaultPlan,
    current_fault_plan,
    make_flow,
    set_fault_plan,
)
from repro.training.checkpoint import (
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.training.faults import FaultEvent
from repro.training.parallel import reset_fallback_warnings

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="host cannot create POSIX shared memory",
)


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_fallback_warnings()
    set_fault_plan(None)
    yield
    set_fault_plan(None)


@pytest.fixture
def force_procs(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PROCS", "1")


@pytest.fixture
def quick_retries(monkeypatch):
    monkeypatch.setenv("REPRO_WORKER_RETRIES", "1")


@pytest.fixture(params=ops.available_backends())
def backend(request):
    with ops.use_backend(request.param):
        yield request.param


def _task_graph(n=100, seed=11):
    graph = sbm_graph(n, 4, 8.0, intra_fraction=0.7, seed=seed).to_undirected()
    attach_classification_task(graph, n_features=8, signal=0.5, seed=seed)
    return graph


def _config(dropout=0.1, k=4):
    return GNNConfig(
        model_type="sage", in_features=8, hidden=16, out_features=4,
        n_layers=2, nonlinearity="maxk", k=k, dropout=dropout,
    )


def _run_sampled(workers, epochs=2, plan=None):
    set_fault_plan(plan)
    try:
        graph = _task_graph()
        flow = make_flow(
            "sampled", sampler="node", batches_per_epoch=2, sample_size=40,
            seed=3, prefetch=2, prefetch_workers=workers,
        )
        engine = Engine(MaxKGNN(graph, _config(), seed=0), graph, flow,
                        lr=0.01)
        try:
            losses = [engine.train_epoch(epoch=e) for e in range(epochs)]
            params = [p.data.copy() for p in engine.optimizer.parameters]
        finally:
            engine.close()
        return losses, params
    finally:
        set_fault_plan(None)


def _run_distributed(replicas, processes, topk=None, dropout=0.1, epochs=2,
                     plan=None):
    set_fault_plan(plan)
    try:
        graph = _task_graph()
        flow = make_flow(
            "distributed", inner="partitioned", replicas=replicas,
            grad_topk=topk, processes=processes, n_parts=4,
            boundary_fraction=0.2, seed=7,
        )
        engine = Engine(MaxKGNN(graph, _config(dropout), seed=0), graph,
                        flow, lr=0.01)
        try:
            losses = [engine.train_epoch(epoch=e) for e in range(epochs)]
            params = [p.data.copy() for p in engine.optimizer.parameters]
        finally:
            engine.close()
        return losses, params
    finally:
        set_fault_plan(None)


def _identical(a, b):
    return a[0] == b[0] and all(
        np.array_equal(x, y) for x, y in zip(a[1], b[1])
    )


def _no_leaks():
    assert owned_segment_count() == 0
    assert not multiprocessing.active_children()


class TestFaultPlan:
    def test_parse_round_trip(self):
        spec = "kill_worker:prefetch:1:0;hang_worker:replica:*:3"
        plan = FaultPlan.parse(spec)
        assert plan.spec() == spec
        assert len(plan) == 2
        assert plan.events_for("replica")[0].persistent

    def test_malformed_specs_rejected(self):
        with pytest.raises(ValueError, match="expected action:scope"):
            FaultPlan.parse("kill_worker:prefetch:1")
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultPlan.parse("explode:prefetch:1:0")
        with pytest.raises(ValueError, match="unknown fault scope"):
            FaultPlan.parse("kill_worker:nowhere:1:0")
        with pytest.raises(ValueError, match="coordinate"):
            FaultPlan.parse("kill_worker:prefetch:x:0")
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan.parse("kill_worker:prefetch:-2:0")

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "drop_pipe:replica:0:2")
        plan = current_fault_plan()
        assert plan is not None
        assert plan.events[0] == FaultEvent("drop_pipe", "replica", 0, 2)

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "drop_pipe:replica:0:2")
        installed = FaultPlan.parse("kill_worker:prefetch:0:0")
        set_fault_plan(installed)
        assert current_fault_plan() is installed

    def test_wildcard_events_are_persistent(self):
        events = [FaultEvent("kill_worker", "prefetch", 1, 0)]
        from repro.training.parallel import _consume_events

        assert _consume_events(events, 0, 0) == []
        assert _consume_events(events, 1, 0) == ["kill_worker"]
        assert events == []  # exact-coordinate events consume
        wild = [FaultEvent("kill_worker", "prefetch", -1, -1)]
        assert _consume_events(wild, 5, 9) == ["kill_worker"]
        assert wild  # wildcards never consume


class TestPrefetchRecovery:
    """A sabotaged build slot is respawned + replayed bit-identically."""

    def test_killed_worker_mid_epoch_is_bitwise_invisible(
        self, force_procs, backend
    ):
        clean = _run_sampled(2)
        faulted = _run_sampled(
            2, plan=FaultPlan.parse("kill_worker:prefetch:1:0")
        )
        assert _identical(clean, faulted)
        _no_leaks()

    def test_corrupt_payload_is_replayed(self, force_procs):
        clean = _run_sampled(2)
        faulted = _run_sampled(
            2, plan=FaultPlan.parse("corrupt_payload:prefetch:0:1")
        )
        assert _identical(clean, faulted)
        _no_leaks()

    def test_torn_pipe_is_replayed(self, force_procs):
        clean = _run_sampled(2)
        faulted = _run_sampled(
            2, plan=FaultPlan.parse("drop_pipe:prefetch:1:1")
        )
        assert _identical(clean, faulted)
        _no_leaks()

    @pytest.mark.slow
    def test_hung_worker_is_killed_and_replayed(self, force_procs,
                                                monkeypatch):
        # The deadline also bounds the spawn handshake, so keep it large
        # enough for a cold worker import; one hang costs one deadline.
        monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "15")
        clean = _run_sampled(2)
        faulted = _run_sampled(
            2, plan=FaultPlan.parse("hang_worker:prefetch:1:0")
        )
        assert _identical(clean, faulted)
        _no_leaks()

    def test_exhaustion_degrades_in_process_with_one_warning(
        self, force_procs, quick_retries
    ):
        thread = _run_sampled("thread", epochs=3)
        with pytest.warns(RuntimeWarning, match="in-process") as caught:
            faulted = _run_sampled(
                2, epochs=3,
                plan=FaultPlan.parse("kill_worker:prefetch:*:*"),
            )
        relevant = [w for w in caught
                    if "in-process" in str(w.message)]
        assert len(relevant) == 1
        assert "exhausted supervised recovery" in str(relevant[0].message)
        assert _identical(thread, faulted)
        _no_leaks()


class TestReplicaRecovery:
    """A sabotaged replica op is respawned from its snapshot + replayed."""

    def test_killed_worker_mid_epoch_is_bitwise_invisible(
        self, force_procs, backend
    ):
        # Op 3 is the second round's build of epoch 0 (build, step, build,
        # step per epoch at R=2 over 4 partitions) — squarely mid-epoch.
        clean = _run_distributed(2, True, dropout=0.0)
        faulted = _run_distributed(
            2, True, dropout=0.0,
            plan=FaultPlan.parse("kill_worker:replica:0:3"),
        )
        assert _identical(clean, faulted)
        _no_leaks()

    def test_killed_worker_mid_step_with_dropout_r1(self, force_procs):
        # R=1 exercises the snapshot rng restore: the replayed step must
        # redraw the *same* dropout mask the lost reply consumed.
        clean = _run_distributed(1, True)
        faulted = _run_distributed(
            1, True, plan=FaultPlan.parse("kill_worker:replica:0:6"),
        )
        assert _identical(clean, faulted)
        _no_leaks()

    def test_corrupt_grad_payload_is_replayed(self, force_procs):
        clean = _run_distributed(2, True, dropout=0.0, topk=4)
        faulted = _run_distributed(
            2, True, dropout=0.0, topk=4,
            plan=FaultPlan.parse("corrupt_payload:replica:1:4"),
        )
        assert _identical(clean, faulted)
        _no_leaks()

    def test_torn_pipe_is_replayed(self, force_procs):
        clean = _run_distributed(2, True, dropout=0.0)
        faulted = _run_distributed(
            2, True, dropout=0.0,
            plan=FaultPlan.parse("drop_pipe:replica:1:2"),
        )
        assert _identical(clean, faulted)
        _no_leaks()

    @pytest.mark.slow
    def test_hung_worker_is_killed_and_replayed(self, force_procs,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "15")
        clean = _run_distributed(1, True, dropout=0.0)
        faulted = _run_distributed(
            1, True, dropout=0.0,
            plan=FaultPlan.parse("hang_worker:replica:0:2"),
        )
        assert _identical(clean, faulted)
        _no_leaks()

    def test_exhaustion_degrades_mid_epoch_with_one_warning(
        self, force_procs, quick_retries
    ):
        # Wildcard kills exhaust max_retries on the very first op; the
        # engine must finish the interrupted epoch (and all later ones)
        # in-process on the exact same trajectory, then leave no workers
        # or segments behind.
        inproc = _run_distributed(2, False, dropout=0.0, topk=4, epochs=3)
        with pytest.warns(RuntimeWarning, match="in-process") as caught:
            degraded = _run_distributed(
                2, True, dropout=0.0, topk=4, epochs=3,
                plan=FaultPlan.parse("kill_worker:replica:*:*"),
            )
        relevant = [w for w in caught
                    if "exhausted supervised recovery" in str(w.message)]
        assert len(relevant) == 1
        assert "exit code" in str(relevant[0].message)
        assert _identical(inproc, degraded)
        _no_leaks()

    def test_engine_close_after_degradation_leaves_nothing(
        self, force_procs, quick_retries
    ):
        graph = _task_graph()
        flow = make_flow(
            "distributed", inner="partitioned", replicas=2, processes=True,
            n_parts=4, boundary_fraction=0.2, seed=7,
        )
        engine = Engine(MaxKGNN(graph, _config(0.0), seed=0), graph, flow,
                        lr=0.01)
        set_fault_plan(FaultPlan.parse("kill_worker:replica:*:*"))
        try:
            with pytest.warns(RuntimeWarning, match="in-process"):
                engine.train_epoch(epoch=0)
            assert engine._procs_disabled
            # Degradation is sticky: the next epoch never re-provisions.
            engine.train_epoch(epoch=1)
            assert engine._replica_pool is None
        finally:
            engine.close()
            engine.close()  # idempotent
        _no_leaks()

    def test_shared_memory_failure_still_completes_in_process(
        self, force_procs, monkeypatch
    ):
        # An injected SharedMemory failure at pool construction must warn
        # once and fall back, not crash training.
        def explode(graph):
            raise OSError("no shm today")

        monkeypatch.setattr(SharedGraphStore, "export", explode)
        with pytest.warns(RuntimeWarning, match="in-process"):
            faulted = _run_distributed(2, True, dropout=0.0)
        monkeypatch.undo()
        reset_fallback_warnings()
        clean = _run_distributed(2, False, dropout=0.0)
        assert _identical(clean, faulted)
        _no_leaks()


class TestFullStateCheckpoint:
    """Resume is bit-for-bit: params, Adam moments, RNG, residuals."""

    def _fit_engine(self, graph, flow, **fit_kwargs):
        engine = Engine(MaxKGNN(graph, _config(), seed=0), graph, flow,
                        lr=0.01)
        try:
            engine.fit(4, eval_every=2, **fit_kwargs)
            return [p.data.copy() for p in engine.optimizer.parameters]
        finally:
            engine.close()

    def test_resume_bitwise_full_graph(self, tmp_path, backend):
        graph = _task_graph()
        straight = self._fit_engine(graph, make_flow("full"))
        self._fit_engine(
            graph, make_flow("full"),
            checkpoint_every=2, checkpoint_dir=tmp_path,
        )
        resumed = self._fit_engine(
            graph, make_flow("full"),
            resume_from=tmp_path / "checkpoint-00002.ckpt",
        )
        assert all(np.array_equal(a, b)
                   for a, b in zip(straight, resumed))

    def test_resume_bitwise_sampled(self, tmp_path):
        graph = _task_graph()

        def flow():
            return make_flow(
                "sampled", sampler="node", batches_per_epoch=2,
                sample_size=40, seed=3,
            )

        straight = self._fit_engine(graph, flow())
        self._fit_engine(
            graph, flow(), checkpoint_every=2, checkpoint_dir=tmp_path,
        )
        resumed = self._fit_engine(
            graph, flow(), resume_from=tmp_path / "checkpoint-00002.ckpt",
        )
        assert all(np.array_equal(a, b)
                   for a, b in zip(straight, resumed))

    def test_resume_bitwise_distributed_topk(self, tmp_path, backend):
        # Error-feedback residuals ride in the checkpoint: without them
        # the resumed sparse exchange would diverge immediately.
        graph = _task_graph()

        def flow():
            return make_flow(
                "distributed", inner="partitioned", replicas=2,
                grad_topk=4, n_parts=4, boundary_fraction=0.2, seed=7,
            )

        straight = self._fit_engine(graph, flow())
        self._fit_engine(
            graph, flow(), checkpoint_every=2, checkpoint_dir=tmp_path,
        )
        resumed = self._fit_engine(
            graph, flow(), resume_from=tmp_path / "checkpoint-00002.ckpt",
        )
        assert all(np.array_equal(a, b)
                   for a, b in zip(straight, resumed))

    def test_resume_bitwise_replica_procs(self, tmp_path, force_procs):
        # A pool-backed run checkpoints its workers' live streams and
        # residuals; resuming re-seeds fresh workers from them.
        graph = _task_graph()

        def flow():
            return make_flow(
                "distributed", inner="partitioned", replicas=1,
                grad_topk=4, processes=True, n_parts=4,
                boundary_fraction=0.2, seed=7,
            )

        straight = self._fit_engine(graph, flow())
        self._fit_engine(
            graph, flow(), checkpoint_every=2, checkpoint_dir=tmp_path,
        )
        resumed = self._fit_engine(
            graph, flow(), resume_from=tmp_path / "checkpoint-00002.ckpt",
        )
        assert all(np.array_equal(a, b)
                   for a, b in zip(straight, resumed))
        _no_leaks()

    def test_checkpoint_meta_records_training_state(self, tmp_path):
        graph = _task_graph()
        flow = make_flow("full")
        engine = Engine(MaxKGNN(graph, _config(), seed=0), graph, flow,
                        lr=0.01)
        try:
            engine.fit(2, eval_every=1, checkpoint_every=2,
                       checkpoint_dir=tmp_path)
        finally:
            engine.close()
        arrays, meta = read_checkpoint(tmp_path / "checkpoint-00002.ckpt")
        assert meta["kind"] == "training"
        assert meta["epoch"] == 2
        assert meta["adam_t"] == 2
        assert meta["rng_state"]["bit_generator"] == "PCG64"
        assert "fingerprint" in meta
        assert "__adam_m__" in arrays and "__adam_v__" in arrays
        assert any(key.startswith("conv0.") for key in arrays)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        graph = _task_graph()
        engine = Engine(MaxKGNN(graph, _config(), seed=0), graph,
                        make_flow("full"), lr=0.01)
        path = tmp_path / "ck.ckpt"
        try:
            engine.save_checkpoint(path, next_epoch=1)
        finally:
            engine.close()
        other = Engine(MaxKGNN(graph, _config(k=2), seed=0), graph,
                       make_flow("full"), lr=0.01)
        try:
            with pytest.raises(CheckpointError,
                               match="different model configuration"):
                other.load_checkpoint(path)
        finally:
            other.close()

    def test_latest_checkpoint_orders_by_epoch(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        for epoch in (2, 10, 4):
            write_checkpoint(
                tmp_path / f"checkpoint-{epoch:05d}.ckpt",
                {"x": np.zeros(1)}, {"epoch": epoch},
            )
        (tmp_path / "checkpoint-junk.ckpt").write_bytes(b"not a number")
        best = latest_checkpoint(tmp_path)
        assert best is not None and best.name == "checkpoint-00010.ckpt"


class TestCheckpointIntegrity:
    def _write(self, path):
        write_checkpoint(
            path, {"w": np.arange(6.0).reshape(2, 3)}, {"epoch": 3}
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.ckpt"
        self._write(path)
        arrays, meta = read_checkpoint(path)
        np.testing.assert_array_equal(
            arrays["w"], np.arange(6.0).reshape(2, 3)
        )
        assert meta == {"epoch": 3}

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "ck.ckpt"
        self._write(path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="CRC32"):
            read_checkpoint(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "ck.ckpt"
        self._write(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_not_a_checkpoint_detected(self, tmp_path):
        path = tmp_path / "ck.ckpt"
        path.write_bytes(b"x" * 64)
        with pytest.raises(CheckpointError, match="footer"):
            read_checkpoint(path)
        path.write_bytes(b"x")
        with pytest.raises(CheckpointError, match="too short"):
            read_checkpoint(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "ck.ckpt"
        self._write(path)
        self._write(path)  # overwrite goes through the same tmp + rename
        leftovers = [p for p in tmp_path.iterdir() if p.name != "ck.ckpt"]
        assert leftovers == []

    def test_legacy_npz_file_still_loads(self, tmp_path):
        from repro.training import load_checkpoint

        graph = _task_graph()
        net = MaxKGNN(graph, _config(), seed=0)
        path = tmp_path / "legacy.npz"
        np.savez(path, **{
            f"param_{i}": p.data.copy()
            for i, p in enumerate(net.parameters())
        })
        clone = MaxKGNN(graph, _config(), seed=99)
        load_checkpoint(clone, path)
        for original, restored in zip(net.parameters(), clone.parameters()):
            np.testing.assert_array_equal(original.data, restored.data)


class TestSegmentHygiene:
    def test_sweep_unlinks_dead_owner_segments(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this host")
        pid = 4_000_000  # beyond this container's pid space
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
        segment = f"/dev/shm/repro-shm-{pid}-1-0"
        pidfile = f"/dev/shm/repro-shm-{pid}.pid"
        with open(segment, "wb") as handle:
            handle.write(b"\x00" * 16)
        with open(pidfile, "w") as handle:
            handle.write(str(pid))
        try:
            freed = sweep_leaked_segments()
            assert freed >= 1
            assert not os.path.exists(segment)
            assert not os.path.exists(pidfile)
        finally:
            for leftover in (segment, pidfile):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass

    def test_stale_handle_attach_fails_fast(self):
        graph = _task_graph(60)
        store = SharedGraphStore.export(graph)
        handle = store.handle()
        store.close()
        store.unlink()
        with pytest.raises(StaleHandleError, match="no longer exists"):
            attached = SharedGraphStore.attach(handle)
            attached.graph()
        _no_leaks()

    def test_handles_carry_a_generation(self):
        graph = _task_graph(60)
        with SharedGraphStore.export(graph) as first:
            generation = first.handle().generation
        with SharedGraphStore.export(graph) as second:
            assert second.handle().generation == generation + 1
        _no_leaks()
