"""Tests for the multi-GPU partition-parallel epoch model."""

import pytest

from repro.gpusim import A100, MultiGpuEpochModel, PartitionStats, partition_stats
from repro.graphs import bfs_partition, sbm_graph


@pytest.fixture(scope="module")
def graph():
    return sbm_graph(400, 8, 12.0, seed=5).to_undirected()


@pytest.fixture(scope="module")
def stats(graph):
    partition = bfs_partition(graph, 4, seed=0)
    return partition_stats(graph, partition)


class TestPartitionStats:
    def test_counts_consistent(self, graph, stats):
        assert sum(stats.nodes_per_part) == graph.n_nodes
        assert sum(stats.edges_per_part) <= graph.n_edges
        assert all(b <= n for b, n in
                   zip(stats.boundary_per_part, stats.nodes_per_part))

    def test_scaling(self, stats):
        scaled = stats.scaled(node_factor=10, edge_factor=20)
        assert scaled.nodes_per_part[0] == stats.nodes_per_part[0] * 10
        assert scaled.edges_per_part[0] == stats.edges_per_part[0] * 20

    def test_scaling_validation(self, stats):
        with pytest.raises(ValueError):
            stats.scaled(0, 1)

    def test_list_length_validation(self):
        with pytest.raises(ValueError):
            PartitionStats(2, [1], [1, 1], [0, 0])


class TestMultiGpuEpochModel:
    def model(self, stats, **kwargs):
        defaults = dict(hidden=256, n_layers=3, device=A100)
        defaults.update(kwargs)
        return MultiGpuEpochModel(stats, **defaults)

    def test_maxk_speeds_up_partitioned_training(self, stats):
        model = self.model(stats.scaled(500, 500))
        assert model.speedup(16) > 1.5

    def test_speedup_monotone_in_k(self, stats):
        model = self.model(stats.scaled(500, 500))
        speedups = [model.speedup(k) for k in (8, 32, 128)]
        assert speedups == sorted(speedups, reverse=True)

    def test_boundary_sampling_reduces_comm(self, stats):
        big = stats.scaled(2000, 2000)
        full = self.model(big, boundary_fraction=1.0)
        sampled = self.model(big, boundary_fraction=0.1)
        assert sampled.baseline_epoch() < full.baseline_epoch()
        assert (
            sampled.communication_fraction() < full.communication_fraction()
        )

    def test_maxk_shrinks_boundary_traffic(self, stats):
        """CBSR boundary rows are 5k+4k bytes instead of 2·4·dim."""
        model = self.model(stats.scaled(2000, 2000))
        comm_base = model.communication_fraction() * model.baseline_epoch()
        comm_maxk = model.communication_fraction(16) * model.maxk_epoch(16)
        assert comm_maxk < comm_base

    def test_epoch_positive(self, stats):
        model = self.model(stats)
        assert model.baseline_epoch() > 0
        assert model.maxk_epoch(8) > 0

    def test_validation(self, stats):
        with pytest.raises(ValueError):
            self.model(stats, boundary_fraction=2.0)
        with pytest.raises(ValueError):
            self.model(stats, hidden=0)
        model = self.model(stats)
        with pytest.raises(ValueError):
            model.maxk_epoch(0)
        with pytest.raises(ValueError):
            model.maxk_epoch(300)
