"""Tests for the shared-memory graph store (PR 7 tentpole substrate).

Covers the export → handle → attach roundtrip (every array field plus
cached CSR adjacencies), handle picklability (the spawn-bootstrap
contract), the explicit close/unlink lifecycle with the process-local
leak registry, and the graceful-degradation resolver that decides when a
process pool may be provisioned at all.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.graphs import (
    SharedGraphStore,
    attach_classification_task,
    attach_multilabel_task,
    owned_segment_count,
    sbm_graph,
    shared_memory_available,
)
from repro.graphs.shm import owned_segment_names
from repro.training import resolve_process_workers
from repro.training.parallel import (
    available_cores,
    graph_from_payload,
    graph_payload,
    pack_parameters,
    processes_forced,
    reset_fallback_warnings,
    unpack_parameters,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="host cannot create POSIX shared memory",
)


@pytest.fixture(autouse=True)
def _fresh_warning_cache():
    # The resolver's denial warning is cached per (reason, label)
    # process-wide; each test must observe its own first occurrence.
    reset_fallback_warnings()
    yield


def _task_graph(n=120, seed=5):
    graph = sbm_graph(n, 4, 8.0, intra_fraction=0.7, seed=seed).to_undirected()
    attach_classification_task(graph, n_features=8, signal=0.5, seed=seed)
    return graph


class TestRoundtrip:
    def test_all_fields_and_adjacency_roundtrip(self):
        graph = _task_graph()
        graph.adjacency("sage")  # warm one CSR into the cache
        before = owned_segment_count()
        with SharedGraphStore.export(graph) as store:
            attached = SharedGraphStore.attach(store.handle())
            twin = attached.graph()
            assert twin.n_nodes == graph.n_nodes
            assert twin.name == graph.name
            assert twin.multilabel == graph.multilabel
            for field in ("src", "dst", "features", "labels", "train_mask",
                          "val_mask", "test_mask", "communities"):
                original = getattr(graph, field)
                mirror = getattr(twin, field)
                assert np.array_equal(original, mirror), field
            # The cached adjacency ships pre-built: no recompute on attach.
            assert "sage" in twin._adj_cache
            a, b = graph.adjacency("sage"), twin.adjacency("sage")
            assert np.array_equal(a.indptr, b.indptr)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.data, b.data)
            attached.close()
        assert owned_segment_count() == before

    def test_views_are_read_only(self):
        graph = _task_graph(60)
        with SharedGraphStore.export(graph) as store:
            twin = SharedGraphStore.attach(store.handle()).graph()
            with pytest.raises((ValueError, RuntimeError)):
                twin.features[0, 0] = 1.0

    def test_multilabel_roundtrip(self):
        graph = sbm_graph(60, 3, 6.0, seed=2).to_undirected()
        attach_multilabel_task(graph, n_features=6, n_labels=4, seed=2)
        with SharedGraphStore.export(graph) as store:
            twin = SharedGraphStore.attach(store.handle()).graph()
            assert twin.multilabel
            assert np.array_equal(graph.labels, twin.labels)

    def test_handle_pickles_small(self):
        graph = _task_graph()
        graph.adjacency("sage")
        with SharedGraphStore.export(graph) as store:
            blob = pickle.dumps(store.handle())
            # The handle is a recipe, not the data: far below the ~200KB
            # the feature matrix alone occupies.
            assert len(blob) < 8192
            handle = pickle.loads(blob)
            twin = SharedGraphStore.attach(handle).graph()
            assert np.array_equal(graph.features, twin.features)


class TestLifecycle:
    def test_unlink_clears_registry_and_is_idempotent(self):
        graph = _task_graph(60)
        before = owned_segment_names()
        store = SharedGraphStore.export(graph)
        created = owned_segment_names() - before
        assert created  # export registered its segments
        store.close()
        store.close()  # idempotent
        store.unlink()
        store.unlink()  # idempotent
        assert not (owned_segment_names() & created)

    def test_attach_close_keeps_owner_segments(self):
        graph = _task_graph(60)
        store = SharedGraphStore.export(graph)
        attached = SharedGraphStore.attach(store.handle())
        attached.close()
        attached.close()
        # Closing (even unlinking) a non-owner never frees the segments.
        attached.unlink()
        twin = SharedGraphStore.attach(store.handle()).graph()
        assert np.array_equal(graph.features, twin.features)
        store.close()
        store.unlink()

    def test_graph_after_close_raises(self):
        store = SharedGraphStore.export(_task_graph(60))
        store.close()
        with pytest.raises(ValueError):
            store.graph()
        store.unlink()

    def test_export_failure_leaks_nothing(self):
        class Hostile:
            n_nodes = 3
            src = np.array([0, 1])
            dst = np.array([1, 2])

            @property
            def features(self):
                raise RuntimeError("broken graph")

        before = owned_segment_count()
        with pytest.raises(RuntimeError, match="broken graph"):
            SharedGraphStore.export(Hostile())
        # src/dst were already exported when features blew up; the
        # failure path must have unlinked them.
        assert owned_segment_count() == before


class TestResolver:
    def test_forced_env_overrides_core_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PROCS", "1")
        assert processes_forced()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_process_workers(2) == 2

    def test_degrades_on_too_few_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_PROCS", raising=False)
        requested = available_cores() + 1
        with pytest.warns(RuntimeWarning, match="core"):
            assert resolve_process_workers(requested) == 0

    def test_degrades_on_unpicklable_payload(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PROCS", "1")
        unpicklable = lambda: None  # noqa: E731 — locals never pickle
        with pytest.warns(RuntimeWarning, match="picklable"):
            assert resolve_process_workers(2, payload=unpicklable) == 0

    def test_non_positive_request_stays_in_process(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_process_workers(0) == 0

    def test_exactly_one_warning_per_reason_and_label(self, monkeypatch):
        # The denial warning is cached on (reason, label): repeating the
        # same denial stays silent, a different label or reason warns
        # afresh — so multi-epoch training logs each failure mode once.
        monkeypatch.delenv("REPRO_FORCE_PROCS", raising=False)
        requested = available_cores() + 1
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                assert resolve_process_workers(
                    requested, label="prefetch workers"
                ) == 0
            assert resolve_process_workers(
                requested, label="replica processes"
            ) == 0
            monkeypatch.setenv("REPRO_FORCE_PROCS", "1")
            unpicklable = lambda: None  # noqa: E731
            for _ in range(2):
                assert resolve_process_workers(
                    2, label="prefetch workers", payload=unpicklable
                ) == 0
        relevant = [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 3  # cores×2 labels + picklability×1
        reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="core"):
            monkeypatch.delenv("REPRO_FORCE_PROCS", raising=False)
            assert resolve_process_workers(
                requested, label="prefetch workers"
            ) == 0


class TestFlatParameters:
    def test_pack_unpack_roundtrip(self):
        from repro.tensor import Tensor

        params = [Tensor(np.arange(6, dtype=np.float64).reshape(2, 3)),
                  Tensor(np.array([7.0, 8.0]))]
        flat = pack_parameters(params)
        assert flat.shape == (8,)
        targets = [Tensor(np.zeros((2, 3))), Tensor(np.zeros(2))]
        unpack_parameters(targets, flat)
        for p, t in zip(params, targets):
            assert np.array_equal(p.data, t.data)
        # The output buffer is reused when shapes line up.
        again = pack_parameters(params, flat)
        assert again is flat


class TestBatchPayload:
    def test_payload_roundtrips_a_subgraph(self):
        graph = _task_graph(80)
        payload = graph_payload(graph, ("sage",))
        twin = graph_from_payload(payload)
        assert np.array_equal(graph.features, twin.features)
        assert np.array_equal(graph.train_mask, twin.train_mask)
        # The warmed norm arrives pre-built in the twin's cache.
        assert "sage" in twin._adj_cache
        a, b = graph.adjacency("sage"), twin.adjacency("sage")
        assert np.array_equal(a.data, b.data)
