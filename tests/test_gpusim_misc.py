"""Coverage for gpusim helpers: TrafficReport, KernelCost, DeviceModel."""

import dataclasses

import pytest

from repro.gpusim import (
    A100,
    DeviceModel,
    SparsePattern,
    TrafficReport,
    cusparse_spmm_cost,
    spgemm_cost,
)


class TestTrafficReport:
    def test_add_and_total(self):
        report = TrafficReport()
        report.add("a", 100.0).add("b", 50.0).add("a", 25.0)
        assert report.categories["a"] == 125.0
        assert report.total == 175.0

    def test_merged_keeps_both(self):
        left = TrafficReport({"a": 1.0})
        right = TrafficReport({"a": 2.0, "b": 3.0})
        merged = left.merged(right)
        assert merged.categories == {"a": 3.0, "b": 3.0}
        # Inputs untouched.
        assert left.categories == {"a": 1.0}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TrafficReport().add("a", -1.0)

    def test_repr_sorted(self):
        report = TrafficReport({"b": 2.0, "a": 1.0})
        text = repr(report)
        assert text.index("a=") < text.index("b=")


class TestKernelCost:
    def test_speedup_over(self):
        pattern = SparsePattern(1000, 1000, 50_000)
        slow = cusparse_spmm_cost(pattern, 256, A100)
        fast = spgemm_cost(pattern, 256, 8, A100)
        assert fast.speedup_over(slow) == pytest.approx(
            slow.latency / fast.latency
        )
        assert fast.total_bytes < slow.total_bytes

    def test_invalid_cost_rejected(self):
        from repro.gpusim import KernelCost

        with pytest.raises(ValueError):
            KernelCost("x", TrafficReport(), flops=1.0, latency=0.0)
        with pytest.raises(ValueError):
            KernelCost("x", TrafficReport(), flops=-1.0, latency=1.0)


class TestDeviceModel:
    def test_memory_time_linear_in_bytes(self):
        one = A100.memory_time(1e9, 0.5)
        two = A100.memory_time(2e9, 0.5)
        assert two == pytest.approx(2 * one)

    def test_custom_device_changes_costs(self):
        slow_hbm = dataclasses.replace(A100, hbm_bandwidth=A100.hbm_bandwidth / 2)
        pattern = SparsePattern(1000, 1000, 100_000)
        assert (
            cusparse_spmm_cost(pattern, 256, slow_hbm).latency
            > cusparse_spmm_cost(pattern, 256, A100).latency
        )

    def test_gnnadvisor_slowdown_bounds(self):
        assert A100.gnnadvisor_slowdown(0.0) == pytest.approx(1.05)
        assert A100.gnnadvisor_slowdown(600.0) == pytest.approx(1.35)
        assert A100.gnnadvisor_slowdown(10_000.0) == pytest.approx(1.35)

    def test_compute_time_regular_vs_irregular(self):
        assert A100.compute_time(1e12, regular=True) < A100.compute_time(
            1e12, regular=False
        )

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            A100.hbm_bandwidth = 1.0

    def test_default_spec_is_a100(self):
        assert A100.name == "A100-80GB"
        assert DeviceModel().l2_bytes == 40 * 1024 * 1024


class TestBoundedLatencyGuards:
    def test_l2_boost_validation(self):
        from repro.gpusim.kernels.base import bounded_latency

        with pytest.raises(ValueError):
            bounded_latency(A100, TrafficReport({"x": 1.0}), 1.0, 0.5, 0.5)

    def test_launch_overhead_floor(self):
        from repro.gpusim.kernels.base import bounded_latency

        latency = bounded_latency(A100, TrafficReport({"x": 1.0}), 0.0, 0.5)
        assert latency >= A100.launch_overhead
