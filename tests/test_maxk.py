"""Unit tests for the MaxK nonlinearity and the pivot-selection kernel."""

import numpy as np
import pytest

from repro.core import (
    maxk_backward,
    maxk_forward,
    maxk_mask,
    pivot_select,
    pivot_select_row,
)


@pytest.fixture
def features():
    return np.random.default_rng(11).normal(size=(30, 24))


class TestMaxKForward:
    def test_exactly_k_survivors_per_row(self, features):
        for k in (1, 3, 8, 24):
            _, mask = maxk_forward(features, k)
            np.testing.assert_array_equal(mask.sum(axis=1), k)

    def test_survivors_are_the_largest(self, features):
        k = 5
        out, mask = maxk_forward(features, k)
        for i in range(features.shape[0]):
            kept_min = features[i, mask[i]].min()
            dropped_max = features[i, ~mask[i]].max()
            assert kept_min >= dropped_max

    def test_kept_values_unchanged_rest_zero(self, features):
        out, mask = maxk_forward(features, 4)
        np.testing.assert_allclose(out[mask], features[mask])
        assert (out[~mask] == 0).all()

    def test_k_equals_dim_is_identity(self, features):
        out, mask = maxk_forward(features, features.shape[1])
        np.testing.assert_allclose(out, features)
        assert mask.all()

    def test_ties_resolve_deterministically(self):
        row = np.zeros((1, 6))
        _, mask = maxk_forward(row, 2)
        assert mask.sum() == 2
        # Lowest column indices win ties.
        assert mask[0, 0] and mask[0, 1]

    def test_rejects_bad_k(self, features):
        with pytest.raises(ValueError):
            maxk_mask(features, 0)
        with pytest.raises(ValueError):
            maxk_mask(features, features.shape[1] + 1)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            maxk_mask(np.ones(5), 2)


class TestMaxKBackward:
    def test_gradient_routed_through_mask(self, features):
        _, mask = maxk_forward(features, 6)
        grad = np.ones_like(features)
        routed = maxk_backward(grad, mask)
        np.testing.assert_array_equal(routed, mask.astype(float))

    def test_same_sparsity_pattern_as_forward(self, features):
        """Paper §3.1: backward uses the sparsity pattern induced forward."""
        _, mask = maxk_forward(features, 6)
        grad = np.random.default_rng(0).normal(size=features.shape)
        routed = maxk_backward(grad, mask)
        assert ((routed != 0) <= mask).all()

    def test_shape_check(self, features):
        _, mask = maxk_forward(features, 6)
        with pytest.raises(ValueError):
            maxk_backward(np.ones((2, 2)), mask)


class TestPivotSelection:
    def test_matches_exact_topk_count(self, features):
        for k in (1, 4, 12):
            _, masks, _ = pivot_select(features, k)
            np.testing.assert_array_equal(masks.sum(axis=1), k)

    def test_selects_same_values_as_exact_topk(self, features):
        k = 7
        _, pivot_masks, _ = pivot_select(features, k)
        exact_masks = maxk_mask(features, k)
        # The *value sets* must agree even if tie positions differ.
        for i in range(features.shape[0]):
            np.testing.assert_allclose(
                np.sort(features[i, pivot_masks[i]]),
                np.sort(features[i, exact_masks[i]]),
            )

    def test_converges_fast_on_gaussian_rows(self, features):
        """Paper: < 10 iterations on normally distributed feature maps."""
        _, _, iterations = pivot_select(features, 6, max_iterations=30)
        assert iterations.max() <= 30
        assert iterations.mean() < 10

    def test_handles_constant_row(self):
        result = pivot_select_row(np.full(8, 2.5), 3)
        assert result.mask.sum() == 3

    def test_handles_k_equals_dim(self):
        result = pivot_select_row(np.arange(5.0), 5)
        assert result.mask.all()

    def test_iteration_budget_respected(self):
        row = np.random.default_rng(5).normal(size=64)
        result = pivot_select_row(row, 16, max_iterations=2)
        assert result.iterations <= 2
        assert result.mask.sum() == 16  # exact fallback fills the rest

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            pivot_select_row(np.ones((2, 2)), 1)
        with pytest.raises(ValueError):
            pivot_select_row(np.ones(4), 0)
        with pytest.raises(ValueError):
            pivot_select(np.ones(4), 1)
