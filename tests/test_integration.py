"""Integration tests across the full stack.

These exercise the complete MaxK-GNN pipeline: dataset → model → trainer →
kernels → cost model, asserting the paper's end-to-end claims at small scale.
"""

import numpy as np
import pytest

from repro.core import CBSRMatrix, maxk_forward
from repro.experiments.common import epoch_model_for
from repro.gpusim import spgemm_execute, sspmm_execute
from repro.graphs import load_training_dataset, TRAINING_CONFIGS
from repro.models import GNNConfig, MaxKGNN
from repro.tensor import Tensor, maxk, spmm_agg
from repro.training import Trainer


class TestAutogradMatchesKernelDataflow:
    """The training path and the explicit kernel path must agree exactly."""

    def test_layer_forward_equals_spgemm(self):
        graph = load_training_dataset("Flickr")
        adjacency = graph.adjacency("sage")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(graph.n_nodes, 16))
        k = 4

        # Autograd path: maxk -> spmm_agg.
        autograd_out = spmm_agg(adjacency, maxk(Tensor(x), k)).numpy()

        # Kernel path: maxk -> CBSR -> SpGEMM.
        sparsified, _ = maxk_forward(x, k)
        cbsr = CBSRMatrix.from_dense_rows(sparsified, k)
        kernel_out = spgemm_execute(adjacency, cbsr)

        np.testing.assert_allclose(autograd_out, kernel_out, atol=1e-10)

    def test_layer_backward_equals_sspmm(self):
        graph = load_training_dataset("Flickr")
        adjacency = graph.adjacency("sage")
        rng = np.random.default_rng(1)
        x = rng.normal(size=(graph.n_nodes, 16))
        k = 4
        weights = rng.normal(size=(graph.n_nodes, 16))

        # Autograd backward through aggregation only.
        tensor = Tensor(x, requires_grad=True)
        sparsified_t = maxk(tensor, k)
        out = spmm_agg(adjacency, sparsified_t)
        (out * Tensor(weights)).sum().backward()

        # Kernel backward: SSpMM yields the gradient at the CBSR pattern;
        # MaxK backward scatters it to dense.
        sparsified, mask = maxk_forward(x, k)
        cbsr = CBSRMatrix.from_dense_rows(sparsified, k)
        grad_sparse = sspmm_execute(adjacency, weights, cbsr)
        dense_grad = np.zeros_like(x)
        rows = np.arange(graph.n_nodes)[:, None]
        dense_grad[rows, cbsr.sp_index.astype(np.int64)] = grad_sparse.sp_data
        dense_grad = np.where(mask, dense_grad, 0.0)

        np.testing.assert_allclose(tensor.grad, dense_grad, atol=1e-10)


class TestEndToEndTraining:
    @pytest.mark.parametrize("model_type", ["sage", "gcn", "gin"])
    def test_all_model_families_learn(self, model_type):
        graph = load_training_dataset("Flickr")
        cfg = TRAINING_CONFIGS["Flickr"]
        config = GNNConfig(
            model_type=model_type, in_features=cfg.n_features,
            hidden=32, out_features=int(graph.labels.max()) + 1,
            n_layers=2, nonlinearity="maxk", k=8, dropout=0.1,
        )
        trainer = Trainer(MaxKGNN(graph, config), graph, lr=0.01)
        result = trainer.fit(40, eval_every=20)
        n_classes = int(graph.labels.max()) + 1
        assert result.test_at_best_val > 1.5 / n_classes

    def test_maxk_matches_relu_at_moderate_k(self):
        """The paper's core accuracy claim at k = hidden/8 equivalent."""
        graph = load_training_dataset("Flickr")
        cfg = TRAINING_CONFIGS["Flickr"]
        scores = {}
        for nonlinearity, k in (("relu", None), ("maxk", 8)):
            config = GNNConfig(
                model_type="sage", in_features=cfg.n_features,
                hidden=cfg.hidden, out_features=int(graph.labels.max()) + 1,
                n_layers=cfg.layers, nonlinearity=nonlinearity, k=k,
                dropout=cfg.dropout,
            )
            trainer = Trainer(MaxKGNN(graph, config, seed=0), graph, lr=cfg.lr)
            scores[nonlinearity] = trainer.fit(60, eval_every=20).test_at_best_val
        assert scores["maxk"] > scores["relu"] - 0.08

    def test_multilabel_pipeline(self):
        graph = load_training_dataset("ogbn-proteins")
        cfg = TRAINING_CONFIGS["ogbn-proteins"]
        config = GNNConfig(
            model_type="sage", in_features=cfg.n_features, hidden=32,
            out_features=graph.labels.shape[1], n_layers=2,
            nonlinearity="maxk", k=8, dropout=0.2,
        )
        trainer = Trainer(MaxKGNN(graph, config), graph, lr=0.01)
        result = trainer.fit(30, eval_every=15)
        assert result.metric_name == "micro_f1"
        assert result.final_test > 0.3


class TestSystemConsistency:
    def test_cost_model_and_amdahl_agree_for_every_dataset(self):
        for dataset in TRAINING_CONFIGS:
            cost_model = epoch_model_for(dataset, "sage")
            limit = cost_model.amdahl_limit()
            # k -> 1 speedup approaches but never crosses the limit.
            assert cost_model.speedup(1) < limit
            assert cost_model.speedup(1) > cost_model.speedup(64)

    def test_training_speedup_ordering_is_degree_driven(self):
        """High-avg-degree datasets admit bigger system speedups."""
        speedups = {
            dataset: epoch_model_for(dataset, "sage").speedup(16)
            for dataset in TRAINING_CONFIGS
        }
        assert speedups["Reddit"] > speedups["ogbn-products"]
        assert speedups["ogbn-products"] > speedups["Flickr"]


class TestCBSRKernelTrainingPath:
    """use_cbsr_kernels=True runs the literal Fig.-5 dataflow in training."""

    @pytest.mark.parametrize("model_type", ["sage", "gcn", "gin"])
    def test_cbsr_path_equals_dense_path(self, model_type):
        graph = load_training_dataset("Flickr")
        cfg = TRAINING_CONFIGS["Flickr"]
        out_features = int(graph.labels.max()) + 1
        x = graph.features
        kwargs = dict(
            model_type=model_type, in_features=cfg.n_features, hidden=32,
            out_features=out_features, n_layers=2, nonlinearity="maxk",
            k=8, dropout=0.0,
        )
        from repro.models import GNNConfig, MaxKGNN

        dense = MaxKGNN(graph, GNNConfig(**kwargs), seed=0)
        cbsr = MaxKGNN(
            graph, GNNConfig(use_cbsr_kernels=True, **kwargs), seed=0
        )
        np.testing.assert_allclose(
            dense.eval()(x).numpy(), cbsr.eval()(x).numpy(), atol=1e-10
        )
        dense.train()(x).sum().backward()
        cbsr.train()(x).sum().backward()
        for p_dense, p_cbsr in zip(dense.parameters(), cbsr.parameters()):
            np.testing.assert_allclose(p_dense.grad, p_cbsr.grad, atol=1e-10)

    def test_training_through_cbsr_kernels_learns(self):
        graph = load_training_dataset("Flickr")
        cfg = TRAINING_CONFIGS["Flickr"]
        from repro.models import GNNConfig, MaxKGNN

        config = GNNConfig(
            model_type="sage", in_features=cfg.n_features, hidden=cfg.hidden,
            out_features=int(graph.labels.max()) + 1, n_layers=cfg.layers,
            nonlinearity="maxk", k=8, dropout=cfg.dropout,
            use_cbsr_kernels=True,
        )
        trainer = Trainer(MaxKGNN(graph, config, seed=0), graph, lr=cfg.lr)
        result = trainer.fit(40, eval_every=20)
        n_classes = int(graph.labels.max()) + 1
        assert result.test_at_best_val > 1.5 / n_classes

    def test_cbsr_path_requires_maxk(self):
        graph = load_training_dataset("Flickr")
        from repro.models import SAGEConv

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="MaxK"):
            SAGEConv(graph, 8, 16, rng, nonlinearity="relu",
                     use_cbsr_kernels=True)
