"""Unit tests for the autograd engine, including finite-difference checks."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad
from repro.tensor.tensor import _unbroadcast


def finite_difference(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, rtol=1e-5, atol=1e-7):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    tensor = Tensor(x.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    numeric = finite_difference(lambda arr: build_loss(Tensor(arr)).item(), x.copy())
    np.testing.assert_allclose(tensor.grad, numeric, rtol=rtol, atol=atol)


class TestBasicOps:
    def test_add_gradient(self):
        check_gradient(lambda x: (x + 3.0).sum(), (4, 3))

    def test_mul_gradient(self):
        check_gradient(lambda x: (x * x).sum(), (3, 3))

    def test_div_gradient(self):
        check_gradient(lambda x: (x / 2.5).sum(), (5,))

    def test_div_by_tensor_gradient(self):
        rng = np.random.default_rng(1)
        other = Tensor(rng.normal(size=(4,)) + 3.0)
        check_gradient(lambda x: (x / other).sum(), (4,))

    def test_neg_and_sub(self):
        check_gradient(lambda x: (5.0 - x).sum(), (4,))

    def test_pow_gradient(self):
        check_gradient(lambda x: (x ** 3).sum(), (6,), seed=2)

    def test_matmul_gradient_both_sides(self):
        rng = np.random.default_rng(3)
        w = rng.normal(size=(4, 2))
        check_gradient(lambda x: (x @ Tensor(w)).sum(), (3, 4))
        x_fixed = rng.normal(size=(3, 4))
        check_gradient(lambda w_: (Tensor(x_fixed) @ w_).sum(), (4, 2))

    def test_mean_gradient(self):
        check_gradient(lambda x: x.mean(), (4, 5))

    def test_sum_axis_gradient(self):
        check_gradient(lambda x: (x.sum(axis=1) ** 2).sum(), (3, 4))

    def test_getitem_gradient(self):
        check_gradient(lambda x: x[1:3].sum() * 2.0, (5, 2))

    def test_transpose_gradient(self):
        check_gradient(lambda x: (x.T @ x).sum(), (3, 2))

    def test_reshape_gradient(self):
        check_gradient(lambda x: (x.reshape(6) ** 2).sum(), (2, 3))


class TestBroadcasting:
    def test_bias_broadcast_gradient(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(5, 3))
        bias = Tensor(rng.normal(size=(3,)), requires_grad=True)
        loss = (Tensor(x) + bias).sum()
        loss.backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 5.0))

    def test_unbroadcast_sums_leading_axes(self):
        grad = np.ones((4, 3))
        assert _unbroadcast(grad, (3,)).tolist() == [4.0, 4.0, 4.0]

    def test_unbroadcast_keeps_singleton_axes(self):
        grad = np.ones((4, 3))
        assert _unbroadcast(grad, (1, 3)).shape == (1, 3)


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        loss = (x * x + x).sum()
        loss.backward()
        np.testing.assert_allclose(x.grad, [5.0])  # 2x + 1 at x=2

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        loss = (a * b).sum()  # 6x^2 -> grad 12x = 36
        loss.backward()
        np.testing.assert_allclose(x.grad, [36.0])

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError, match="non-scalar"):
            (x * 2).backward()

    def test_backward_on_detached_rejected(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_stops_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        assert not x.detach().requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x.sum()).backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_explicit_grad_seed(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 3.0
        y.backward(np.full((2, 2), 2.0))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 6.0))

    def test_deep_chain_iterative_toposort(self):
        """The backward sweep is iterative: deep graphs must not recurse out."""
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])
