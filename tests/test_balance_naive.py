"""Tests for workload-balance analysis and the naive kernel ablations."""

import numpy as np
import pytest

from repro.gpusim import (
    A100,
    SparsePattern,
    compare_mappings,
    edge_group_loads,
    gini,
    naive_spgemm_cost,
    naive_sspmm_cost,
    row_split_loads,
    spgemm_cost,
    sspmm_cost,
    warp_efficiency,
)
from repro.graphs import TABLE1_GRAPHS, erdos_renyi_graph, rmat_graph

REDDIT = SparsePattern.from_spec(TABLE1_GRAPHS["Reddit"])


class TestBalanceMetrics:
    def test_uniform_loads_perfectly_efficient(self):
        assert warp_efficiency(np.full(10, 7)) == 1.0
        assert gini(np.full(10, 7)) == pytest.approx(0.0, abs=1e-12)

    def test_single_evil_row_tanks_efficiency(self):
        loads = np.array([1, 1, 1, 1, 100])
        assert warp_efficiency(loads) < 0.25
        assert gini(loads) > 0.5

    def test_empty_loads(self):
        assert warp_efficiency(np.array([])) == 1.0
        assert gini(np.array([])) == 0.0

    def test_zero_loads_ignored_for_efficiency(self):
        assert warp_efficiency(np.array([0, 0, 4, 4])) == 1.0


class TestMappingComparison:
    def test_edge_groups_fix_power_law_imbalance(self):
        """The paper's motivation: EGs remove the evil-row problem."""
        graph = rmat_graph(512, 8192, seed=6)
        comparison = compare_mappings(graph.adjacency("none"), dim_k=32)
        assert comparison.edge_group_efficiency > comparison.row_split_efficiency
        assert comparison.edge_group_gini < comparison.row_split_gini
        assert comparison.max_edge_group_load < comparison.max_row_load
        assert comparison.efficiency_gain > 2.0

    def test_uniform_graph_needs_less_fixing(self):
        skewed = rmat_graph(512, 8192, seed=6)
        uniform = erdos_renyi_graph(512, 16.0, seed=6)
        gain_skewed = compare_mappings(skewed.adjacency("none")).efficiency_gain
        gain_uniform = compare_mappings(uniform.adjacency("none")).efficiency_gain
        assert gain_skewed > gain_uniform

    def test_loads_cover_all_edges(self):
        graph = rmat_graph(128, 1024, seed=7)
        adjacency = graph.adjacency("none")
        assert row_split_loads(adjacency).sum() == adjacency.nnz
        assert edge_group_loads(adjacency, 32).sum() == adjacency.nnz


class TestNaiveKernels:
    """The ablations behind §4's two design decisions."""

    def test_shared_memory_buffering_pays_off(self):
        """Algorithm 1's Buf_w vs naive global sparse atomics."""
        for k in (8, 32, 128):
            buffered = spgemm_cost(REDDIT, 256, k, A100).latency
            naive = naive_spgemm_cost(REDDIT, 256, k, A100).latency
            assert naive > 2.0 * buffered, k

    def test_dense_row_prefetch_pays_off(self):
        """Algorithm 2's stage-1 buffering vs naive irregular gathers."""
        for k in (8, 32, 128):
            prefetched = sspmm_cost(REDDIT, 256, k, A100).latency
            naive = naive_sspmm_cost(REDDIT, 256, k, A100).latency
            assert naive > 2.0 * prefetched, k

    def test_naive_spgemm_can_lose_to_dense_spmm(self):
        """Without coalescing, CBSR sparsity alone does not win — the
        motivation for the kernel co-design."""
        from repro.gpusim import cusparse_spmm_cost

        spmm = cusparse_spmm_cost(REDDIT, 256, A100).latency
        naive = naive_spgemm_cost(REDDIT, 256, 128, A100).latency
        assert naive > spmm

    def test_naive_traffic_categories(self):
        cost = naive_spgemm_cost(REDDIT, 256, 32, A100)
        assert "global_sparse_atomic" in cost.traffic.categories
        cost = naive_sspmm_cost(REDDIT, 256, 32, A100)
        assert "irregular_dense_gather" in cost.traffic.categories

    def test_k_validation(self):
        with pytest.raises(ValueError):
            naive_spgemm_cost(REDDIT, 256, 0, A100)
        with pytest.raises(ValueError):
            naive_sspmm_cost(REDDIT, 256, 300, A100)
