"""Tests for the workspace arena and the fused dense hot-path kernels.

Covers the zero-allocation layer end to end: the :class:`Workspace` buffer
contract, bit-identity of the fused ``linear_act`` / ``linear_maxk`` /
``dropout`` / ``add_into`` / ``spmm_agg`` kernels against the composed
autograd ops on every sparse backend, finite-difference gradchecks of the
fused kernels, the ``out=`` sparse primitives against the reference oracle,
the in-place Adam trajectory, and steady-state workspace allocation
behaviour of a whole training step.
"""

import numpy as np
import pytest

from repro.graphs import (
    attach_classification_task,
    attach_multilabel_task,
    batch_graphs,
    chain_of_cliques,
    sbm_graph,
)
from repro.models import GNNConfig, MaxKGNN
from repro.sparse import CSRMatrix, ops
from repro.tensor import (
    Adam,
    Tensor,
    Workspace,
    add_into,
    dropout,
    linear_act,
    linear_maxk,
    spmm_agg,
)
from repro.training import Engine, FullGraphFlow
from tests.test_tensor import finite_difference


@pytest.fixture(params=ops.available_backends())
def backend(request):
    with ops.use_backend(request.param):
        yield request.param


class TestWorkspace:
    def test_steady_state_reuses_storage(self):
        ws = Workspace()
        first = ws.buffer("a", (8, 4))
        again = ws.buffer("a", (8, 4))
        assert first.base is again.base
        assert ws.allocations == 1
        assert ws.requests == 2

    def test_capacity_grows_monotonically(self):
        ws = Workspace()
        ws.buffer("a", (4, 4))
        big = ws.buffer("a", (16, 4))
        assert big.shape == (16, 4)
        assert ws.allocations == 2
        # Smaller request after growth: prefix view, no new storage.
        small = ws.buffer("a", (2, 3))
        assert small.shape == (2, 3)
        assert ws.allocations == 2

    def test_dtypes_get_separate_slots(self):
        ws = Workspace()
        floats = ws.buffer("a", (4,))
        bools = ws.buffer("a", (4,), dtype=bool)
        assert floats.dtype == np.float64 and bools.dtype == np.bool_
        assert ws.n_slots() == 2

    def test_zero_sized_and_invalid_shapes(self):
        ws = Workspace()
        assert ws.buffer("z", (0, 4)).shape == (0, 4)
        with pytest.raises(ValueError):
            ws.buffer("n", (-1, 4))

    def test_clear_drops_storage(self):
        ws = Workspace()
        ws.buffer("a", (4, 4))
        assert ws.nbytes() > 0
        ws.clear()
        assert ws.nbytes() == 0


class TestFusedBitIdentity:
    """Fused kernels reproduce the composed ops bit for bit."""

    @pytest.mark.parametrize("activation", ["none", "relu", "maxk"])
    @pytest.mark.parametrize("planned", [False, True])
    def test_linear_act_matches_composed(self, backend, activation, planned):
        from repro.tensor import maxk as maxk_op
        from repro.tensor import relu as relu_op

        rng = np.random.default_rng(11)
        x_data = rng.normal(size=(13, 7))
        w_data = rng.normal(size=(7, 10))
        b_data = rng.normal(size=10)
        upstream = rng.normal(size=(13, 10))
        k = 3

        x0 = Tensor(x_data, requires_grad=True)
        w0 = Tensor(w_data.copy(), requires_grad=True)
        b0 = Tensor(b_data.copy(), requires_grad=True)
        y = (x0 @ w0) + b0
        composed = {
            "none": lambda: y,
            "relu": lambda: relu_op(y),
            "maxk": lambda: maxk_op(y, k),
        }[activation]()
        composed.backward(upstream)

        ws = Workspace() if planned else None
        x1 = Tensor(x_data, requires_grad=True)
        w1 = Tensor(w_data.copy(), requires_grad=True)
        b1 = Tensor(b_data.copy(), requires_grad=True)
        fused = linear_act(x1, w1, b1, activation=activation, k=k,
                           workspace=ws, slot="t")
        fused.backward(upstream.copy())

        assert fused.data.tobytes() == composed.data.tobytes()
        assert x1.grad.tobytes() == x0.grad.tobytes()
        assert w1.grad.tobytes() == w0.grad.tobytes()
        assert b1.grad.tobytes() == b0.grad.tobytes()

    def test_linear_maxk_is_linear_act_maxk(self):
        rng = np.random.default_rng(12)
        x = rng.normal(size=(6, 5))
        w = rng.normal(size=(5, 8))
        a = linear_maxk(Tensor(x), Tensor(w), None, k=2)
        b = linear_act(Tensor(x), Tensor(w), None, activation="maxk", k=2)
        assert a.data.tobytes() == b.data.tobytes()

    @pytest.mark.parametrize("planned", [False, True])
    def test_dropout_matches_unplanned_stream(self, planned):
        rng_a = np.random.default_rng(21)
        rng_b = np.random.default_rng(21)
        data = np.random.default_rng(1).normal(size=(9, 6))
        upstream = np.random.default_rng(2).normal(size=(9, 6))

        x0 = Tensor(data, requires_grad=True)
        plain = dropout(x0, 0.4, True, rng_a)
        plain.backward(upstream)

        ws = Workspace() if planned else None
        x1 = Tensor(data, requires_grad=True)
        fused = dropout(x1, 0.4, True, rng_b, workspace=ws, slot="d")
        fused.backward(upstream.copy())
        assert fused.data.tobytes() == plain.data.tobytes()
        assert x1.grad.tobytes() == x0.grad.tobytes()

    def test_add_into_matches_add(self):
        rng = np.random.default_rng(3)
        a_data, b_data = rng.normal(size=(5, 4)), rng.normal(size=(5, 4))
        upstream = rng.normal(size=(5, 4))
        a0 = Tensor(a_data, requires_grad=True)
        b0 = Tensor(b_data, requires_grad=True)
        (a0 + b0).backward(upstream)
        a1 = Tensor(a_data, requires_grad=True)
        b1 = Tensor(b_data, requires_grad=True)
        out = add_into(a1, b1, workspace=Workspace(), slot="s")
        out.backward(upstream.copy())
        assert a1.grad.tobytes() == a0.grad.tobytes()
        assert b1.grad.tobytes() == b0.grad.tobytes()

    def test_add_into_rejects_broadcasting(self):
        with pytest.raises(ValueError, match="equal shapes"):
            add_into(Tensor(np.ones((3, 2))), Tensor(np.ones(2)))

    def test_spmm_agg_workspace_matches_plain(self, backend):
        graph = chain_of_cliques(3, 4)
        adj = graph.adjacency("sage")
        adj_t = graph.adjacency_transpose("sage")
        rng = np.random.default_rng(4)
        x_data = rng.normal(size=(graph.n_nodes, 5))
        upstream = rng.normal(size=(graph.n_nodes, 5))
        x0 = Tensor(x_data, requires_grad=True)
        plain = spmm_agg(adj, x0, adj_t)
        plain.backward(upstream)
        x1 = Tensor(x_data, requires_grad=True)
        ws = spmm_agg(adj, x1, adj_t, workspace=Workspace(), slot="a")
        ws.backward(upstream.copy())
        assert ws.data.tobytes() == plain.data.tobytes()
        assert x1.grad.tobytes() == x0.grad.tobytes()

    def test_linear_act_validation(self):
        x, w = Tensor(np.ones((3, 2))), Tensor(np.ones((2, 4)))
        with pytest.raises(ValueError, match="activation"):
            linear_act(x, w, activation="tanh")
        with pytest.raises(ValueError, match="explicit k"):
            linear_act(x, w, activation="maxk")
        with pytest.raises(ValueError, match="k must be"):
            linear_act(x, w, activation="maxk", k=9)


class TestFusedGradchecks:
    """Central-difference gradchecks of the fused kernels per backend."""

    def test_linear_relu_gradcheck(self, backend):
        rng = np.random.default_rng(41)
        x = rng.normal(size=(6, 4))
        w = rng.normal(size=(4, 5))
        b = rng.normal(size=5)
        ws = Workspace()

        def loss_for(arr):
            out = linear_act(
                Tensor(arr), Tensor(w), Tensor(b), activation="relu",
                workspace=ws, slot="g",
            )
            return ((out * out).sum()).item()

        tensor = Tensor(x.copy(), requires_grad=True)
        out = linear_act(tensor, Tensor(w), Tensor(b), activation="relu",
                         workspace=ws, slot="g")
        # Keep the loss value before the arena is rewritten by the
        # finite-difference probes, then replay the backward.
        (out * out).sum().backward()
        numeric = finite_difference(loss_for, x.copy())
        np.testing.assert_allclose(tensor.grad, numeric, rtol=1e-5, atol=1e-7)

    def test_linear_maxk_gradcheck(self, backend):
        # Spread-out integers keep the k-th/(k+1)-th gap away from the
        # finite-difference step (MaxK is piecewise differentiable).
        rng = np.random.default_rng(42)
        x = rng.permuted(
            np.arange(24, dtype=np.float64).reshape(4, 6), axis=1
        )
        w = np.eye(6)
        ws = Workspace()

        def loss_for(arr):
            out = linear_maxk(Tensor(arr), Tensor(w), None, k=2,
                              workspace=ws, slot="g")
            return ((out * out).sum()).item()

        tensor = Tensor(x.copy(), requires_grad=True)
        out = linear_maxk(tensor, Tensor(w), None, k=2, workspace=ws, slot="g")
        (out * out).sum().backward()
        numeric = finite_difference(loss_for, x.copy())
        np.testing.assert_allclose(tensor.grad, numeric, rtol=1e-5, atol=1e-7)

    def test_weight_and_bias_gradcheck(self, backend):
        rng = np.random.default_rng(43)
        x = rng.normal(size=(5, 3))
        w = rng.normal(size=(3, 4))
        b = rng.normal(size=4)
        ws = Workspace()
        weight = Tensor(w.copy(), requires_grad=True)
        bias = Tensor(b.copy(), requires_grad=True)
        out = linear_act(Tensor(x), weight, bias, activation="relu",
                         workspace=ws, slot="g")
        (out * out).sum().backward()
        numeric_w = finite_difference(
            lambda arr: (
                (o := linear_act(Tensor(x), Tensor(arr), Tensor(b),
                                 activation="relu", workspace=ws, slot="g"))
                * o
            ).sum().item(),
            w.copy(),
        )
        numeric_b = finite_difference(
            lambda arr: (
                (o := linear_act(Tensor(x), Tensor(w), Tensor(arr),
                                 activation="relu", workspace=ws, slot="g"))
                * o
            ).sum().item(),
            b.copy(),
        )
        np.testing.assert_allclose(weight.grad, numeric_w, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(bias.grad, numeric_b, rtol=1e-5, atol=1e-7)


class TestOutParamPrimitives:
    """``out=`` SpMM / segment primitives against the reference oracle."""

    def _random_csr(self, rng, n_rows=12, n_cols=10, density=0.3):
        dense = (rng.random((n_rows, n_cols)) < density) * rng.normal(
            size=(n_rows, n_cols)
        )
        return CSRMatrix.from_dense(dense)

    def test_spmm_out_matches_oracle(self, backend):
        rng = np.random.default_rng(51)
        matrix = self._random_csr(rng)
        x = rng.normal(size=(10, 6))
        with ops.use_backend("reference"):
            oracle = matrix.matmul_dense(x)
        out = np.empty((12, 6))
        result = matrix.matmul_dense(x, out=out)
        assert result is out
        np.testing.assert_allclose(out, oracle, rtol=1e-12, atol=1e-14)

    def test_spmm_out_vector(self, backend):
        rng = np.random.default_rng(52)
        matrix = self._random_csr(rng)
        v = rng.normal(size=10)
        out = np.empty(12)
        assert matrix.matmul_dense(v, out=out) is out
        np.testing.assert_allclose(out, matrix.matmul_dense(v))

    def test_spmm_out_validation(self):
        rng = np.random.default_rng(53)
        matrix = self._random_csr(rng)
        x = rng.normal(size=(10, 6))
        with pytest.raises(ValueError, match="shape"):
            matrix.matmul_dense(x, out=np.empty((5, 6)))
        with pytest.raises(ValueError, match="float64"):
            matrix.matmul_dense(x, out=np.empty((12, 6), dtype=np.float32))

    def test_segment_sum_out(self, backend):
        rng = np.random.default_rng(54)
        values = rng.normal(size=(30, 4))
        ids = rng.integers(0, 7, 30)
        with ops.use_backend("reference"):
            oracle = ops.segment_sum(values, ids, 7)
        out = np.empty((7, 4))
        assert ops.segment_sum(values, ids, 7, out=out) is out
        np.testing.assert_allclose(out, oracle, rtol=1e-12, atol=1e-14)

    def test_topk_out_and_workspace(self, backend):
        rng = np.random.default_rng(55)
        ws = Workspace()
        for trial in range(4):
            # Mix continuous rows with heavy-tie rows to cover both the
            # exact-count fast path and the cumulative fill.
            x = rng.normal(size=(9, 8))
            x[trial % 9] = np.repeat(rng.normal(), 8)
            x[(trial + 3) % 9, :4] = x[(trial + 3) % 9, 4:]
            for k in (1, 3, 8):
                with ops.use_backend("reference"):
                    oracle = ops.topk_mask(x, k)
                out = np.empty((9, 8), dtype=bool)
                got = ops.topk_mask(x, k, out=out, workspace=ws, slot="t")
                assert got is out
                np.testing.assert_array_equal(out, oracle)

    def test_release_hook_default_falls_back_to_clear_cache(self):
        cleared = []

        class _Legacy(ops.SparseOpsBackend):
            name = "legacy"

            def clear_cache(self):
                cleared.append(1)

        # A caching backend written against the PR-2 clear_cache() hook
        # alone keeps bounded pinned memory under pool eviction.
        assert _Legacy().release([object()]) == 0
        assert cleared == [1]
        assert ops.ReferenceBackend().release([object()]) == 0

    def test_scipy_release_drops_only_given(self):
        if "scipy" not in ops.available_backends():
            pytest.skip("scipy backend unavailable")
        rng = np.random.default_rng(56)
        a = self._random_csr(rng)
        b = self._random_csr(rng)
        x = rng.normal(size=(10, 3))
        with ops.use_backend("scipy"):
            backend = ops.get_backend()
            backend.clear_cache()
            a.matmul_dense(x)
            b.matmul_dense(x)
            assert backend.cache_info()["csr_entries"] == 2
            assert ops.release([a]) == 1
            assert backend.cache_info()["csr_entries"] == 1
            assert ops.release([a]) == 0
            assert ops.release([b]) == 1


class TestInPlaceAdam:
    def test_matches_textbook_trajectory_bitwise(self):
        rng = np.random.default_rng(61)
        shapes = [(7, 5), (3,), (4, 6)]
        datas = [rng.normal(size=s) for s in shapes]
        params = [Tensor(d.copy(), requires_grad=True) for d in datas]
        optimizer = Adam(params, lr=0.01, weight_decay=0.3)
        refs = [d.copy() for d in datas]
        m = [np.zeros_like(d) for d in datas]
        v = [np.zeros_like(d) for d in datas]
        for t in range(1, 25):
            grads = [rng.normal(size=s) for s in shapes]
            for p, g in zip(params, grads):
                p.grad = None
                p._accumulate(g)
            optimizer.step()
            for i, g in enumerate(grads):
                grad = g + 0.3 * refs[i]
                m[i] = 0.9 * m[i] + (1.0 - 0.9) * grad
                v[i] = 0.999 * v[i] + (1.0 - 0.999) * grad * grad
                refs[i] -= (
                    0.01 * (m[i] / (1 - 0.9 ** t))
                    / (np.sqrt(v[i] / (1 - 0.999 ** t)) + 1e-8)
                )
        for p, ref in zip(params, refs):
            assert p.data.tobytes() == ref.tobytes()

    def test_skipped_parameter_keeps_state(self):
        p1 = Tensor(np.ones(3), requires_grad=True)
        p2 = Tensor(np.ones(3), requires_grad=True)
        optimizer = Adam([p1, p2], lr=0.1)
        p1._accumulate(np.ones(3))
        optimizer.step()  # p2 has no grad: moments untouched, p2 unchanged
        np.testing.assert_array_equal(p2.data, np.ones(3))
        assert not optimizer._m[1].any()
        assert p1.data[0] != 1.0

    def test_moment_views_alias_flat_storage(self):
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        optimizer = Adam([p])
        assert optimizer._m[0].base is optimizer._flat_m
        assert optimizer._v[0].base is optimizer._flat_v

    def test_grad_buffer_attached_and_adopted(self):
        p = Tensor(np.ones(4), requires_grad=True)
        Adam([p])
        assert p._grad_buffer is not None
        p._accumulate(np.arange(4.0))
        assert p.grad is p._grad_buffer


def _training_engine(use_workspace, seed=0):
    graph = sbm_graph(120, 4, 8.0, intra_fraction=0.7, seed=3).to_undirected()
    attach_classification_task(graph, n_features=8, signal=0.5, seed=3)
    config = GNNConfig(
        model_type="sage", in_features=8, hidden=16, out_features=4,
        n_layers=2, nonlinearity="maxk", k=4, dropout=0.2,
        use_workspace=use_workspace,
    )
    model = MaxKGNN(graph, config, seed=seed)
    return Engine(model, graph, FullGraphFlow(), lr=0.01), graph


class TestWorkspaceTraining:
    def test_workspace_and_composed_train_bit_identically(self):
        result_ws = _training_engine(True)[0].fit(8, eval_every=4)
        result_plain = _training_engine(False)[0].fit(8, eval_every=4)
        assert result_ws.train_losses == result_plain.train_losses
        assert result_ws.val_metrics == result_plain.val_metrics
        assert result_ws.test_metrics == result_plain.test_metrics

    def test_workspace_allocations_flat_in_steady_state(self):
        engine, _ = _training_engine(True)
        engine.fit(3, eval_every=3)
        workspace = engine.model.workspace
        settled = workspace.allocations
        engine.fit(4, eval_every=4)
        assert workspace.allocations == settled
        assert workspace.requests > 0

    def test_models_without_workspace_have_none(self):
        engine, _ = _training_engine(False)
        assert engine.model.workspace is None

    def test_gin_and_cbsr_paths_still_train(self):
        graph = sbm_graph(60, 3, 6.0, seed=5).to_undirected()
        attach_classification_task(graph, n_features=6, seed=5)
        for kwargs in (
            dict(model_type="gin", nonlinearity="relu", k=None),
            dict(model_type="sage", nonlinearity="maxk", k=2,
                 use_cbsr_kernels=True),
        ):
            config = GNNConfig(
                in_features=6, hidden=8, out_features=3, n_layers=2,
                **kwargs,
            )
            engine = Engine(MaxKGNN(graph, config, seed=0), graph, lr=0.01)
            result = engine.fit(3, eval_every=3)
            assert np.isfinite(result.train_losses).all()


class TestBatchGraphs:
    def _labelled(self, n, seed):
        graph = sbm_graph(n, 3, 6.0, seed=seed).to_undirected()
        attach_classification_task(graph, n_features=5, seed=seed)
        return graph

    def test_block_diagonal_adjacency(self):
        parts = [self._labelled(30, 1), self._labelled(20, 2)]
        merged = batch_graphs(parts)
        assert merged.n_nodes == 50
        assert merged.n_edges == parts[0].n_edges + parts[1].n_edges
        dense = merged.adjacency("none").to_dense()
        np.testing.assert_array_equal(
            dense[:30, :30], parts[0].adjacency("none").to_dense()
        )
        np.testing.assert_array_equal(
            dense[30:, 30:], parts[1].adjacency("none").to_dense()
        )
        assert not dense[:30, 30:].any() and not dense[30:, :30].any()

    def test_payloads_concatenate_in_order(self):
        parts = [self._labelled(30, 1), self._labelled(20, 2)]
        merged = batch_graphs(parts)
        np.testing.assert_array_equal(
            merged.features, np.concatenate([p.features for p in parts])
        )
        np.testing.assert_array_equal(
            merged.labels, np.concatenate([p.labels for p in parts])
        )
        np.testing.assert_array_equal(
            merged.train_mask,
            np.concatenate([p.train_mask for p in parts]),
        )

    def test_multilabel_members_stack(self):
        graphs = []
        for seed in (1, 2):
            graph = sbm_graph(25, 3, 5.0, seed=seed).to_undirected()
            attach_multilabel_task(graph, n_features=4, n_labels=3, seed=seed)
            graphs.append(graph)
        merged = batch_graphs(graphs)
        assert merged.multilabel
        assert merged.labels.shape == (50, 3)

    def test_mixed_label_kinds_rejected(self):
        single = self._labelled(20, 1)
        multi = sbm_graph(20, 3, 5.0, seed=2).to_undirected()
        attach_multilabel_task(multi, n_features=4, n_labels=3, seed=2)
        with pytest.raises(ValueError, match="multi-label"):
            batch_graphs([single, multi])

    def test_empty_and_singleton(self):
        with pytest.raises(ValueError, match="at least one"):
            batch_graphs([])
        lone = self._labelled(20, 1)
        assert batch_graphs([lone]) is lone

    def _weighted(self, n, seed):
        graph = self._labelled(n, seed)
        rng = np.random.default_rng(seed)
        mask = np.asarray(graph.train_mask, dtype=bool)
        weights = np.zeros(graph.n_nodes)
        weights[mask] = rng.random(int(mask.sum())) + 0.1
        weights[mask] /= weights[mask].sum()
        graph.loss_weights = weights
        return graph

    def test_mixed_loss_weights_fill_implicit_uniform(self):
        """Merging a weighted member with an unweighted one must fill the
        unweighted member's implicit uniform weights (1/n_labelled on its
        training rows), not drop or misalign the payload."""
        weighted, plain = self._weighted(24, 1), self._labelled(30, 2)
        merged = batch_graphs([weighted, plain])
        assert merged.loss_weights is not None
        assert merged.loss_weights.shape == (54,)
        np.testing.assert_array_equal(
            merged.loss_weights[:24], weighted.loss_weights
        )
        mask = np.asarray(plain.train_mask, dtype=bool)
        expected = np.zeros(30)
        expected[mask] = 1.0 / mask.sum()
        np.testing.assert_allclose(merged.loss_weights[24:], expected)
        # Member order must not matter for the fill.
        flipped = batch_graphs([plain, weighted])
        np.testing.assert_allclose(flipped.loss_weights[:30], expected)

    def test_mixed_loss_weights_preserve_member_estimators(self):
        """The merged weighted-sum loss (with MicroBatchedFlow's 1/K
        rescale) equals the mean of the members' own losses — the
        weighted member's weighted sum and the unweighted member's masked
        mean — so the mixed merge stays unbiased."""
        from repro.tensor import cross_entropy, weighted_cross_entropy

        weighted, plain = self._weighted(24, 3), self._labelled(30, 4)
        rng = np.random.default_rng(0)
        logits_w = rng.normal(size=(24, 3))
        logits_p = rng.normal(size=(30, 3))
        loss_w = weighted_cross_entropy(
            Tensor(logits_w), weighted.labels, weighted.loss_weights,
            weighted.train_mask,
        ).item()
        loss_p = cross_entropy(
            Tensor(logits_p), plain.labels, plain.train_mask
        ).item()
        merged = batch_graphs([weighted, plain])
        rescaled = merged.loss_weights / 2  # the 1/K micro-batch rescale
        loss_m = weighted_cross_entropy(
            Tensor(np.vstack([logits_w, logits_p])), merged.labels,
            rescaled, merged.train_mask,
        ).item()
        assert loss_m == pytest.approx((loss_w + loss_p) / 2)

    def test_all_absent_loss_weights_stay_none(self):
        merged = batch_graphs([self._labelled(20, 1), self._labelled(20, 2)])
        assert merged.loss_weights is None

    def test_all_present_loss_weights_concatenate_unchanged(self):
        a, b = self._weighted(20, 1), self._weighted(25, 2)
        merged = batch_graphs([a, b])
        np.testing.assert_array_equal(
            merged.loss_weights,
            np.concatenate([a.loss_weights, b.loss_weights]),
        )


class TestEvalKeepsArenaSmall:
    def test_full_graph_eval_does_not_grow_workspace(self):
        """Eval passes ride the composed ops: the arena (whose capacity
        never shrinks) must stay sized to the training batches, not the
        full graph."""
        from repro.training import SampledFlow

        graph = sbm_graph(400, 4, 8.0, intra_fraction=0.7, seed=3)
        graph = graph.to_undirected()
        attach_classification_task(graph, n_features=8, signal=0.5, seed=3)
        config = GNNConfig(
            model_type="sage", in_features=8, hidden=16, out_features=4,
            n_layers=2, nonlinearity="maxk", k=4, dropout=0.2,
        )
        flow = SampledFlow(sampler="node", sample_size=40, pool_size=2,
                           seed=0)
        engine = Engine(MaxKGNN(graph, config, seed=0), graph, flow, lr=0.01)
        engine.train_epoch(0)
        trained_bytes = engine.model.workspace.nbytes()
        assert trained_bytes > 0
        scores = engine.evaluate()  # full graph, 10x the batch rows
        assert engine.model.workspace.nbytes() == trained_bytes
        assert np.isfinite(list(scores.values())).all()
