"""Unit tests for graph reordering (locality optimisation)."""

import numpy as np
import pytest

from repro.graphs import (
    apply_permutation,
    bfs_reorder,
    community_sort_reorder,
    degree_sort_reorder,
    locality_score,
    rmat_graph,
    sbm_graph,
    attach_classification_task,
)


@pytest.fixture
def graph():
    graph = sbm_graph(200, 5, 8.0, seed=3)
    attach_classification_task(graph, n_features=8, seed=3)
    return graph


class TestApplyPermutation:
    def test_identity_permutation(self, graph):
        identity = np.arange(graph.n_nodes)
        permuted = apply_permutation(graph, identity)
        np.testing.assert_array_equal(permuted.src, graph.src)
        np.testing.assert_array_equal(permuted.features, graph.features)

    def test_adjacency_is_conjugated(self, graph):
        rng = np.random.default_rng(0)
        perm = rng.permutation(graph.n_nodes)
        permuted = apply_permutation(graph, perm)
        original = graph.adjacency("none").to_dense()
        renumbered = permuted.adjacency("none").to_dense()
        np.testing.assert_array_equal(
            renumbered[np.ix_(perm, perm)], original
        )

    def test_payloads_follow_nodes(self, graph):
        rng = np.random.default_rng(1)
        perm = rng.permutation(graph.n_nodes)
        permuted = apply_permutation(graph, perm)
        for node in range(0, graph.n_nodes, 37):
            np.testing.assert_array_equal(
                permuted.features[perm[node]], graph.features[node]
            )
            assert permuted.labels[perm[node]] == graph.labels[node]
            assert permuted.train_mask[perm[node]] == graph.train_mask[node]

    def test_degree_distribution_invariant(self, graph):
        permuted = degree_sort_reorder(graph)
        np.testing.assert_array_equal(
            np.sort(permuted.in_degrees()), np.sort(graph.in_degrees())
        )

    def test_rejects_non_bijection(self, graph):
        with pytest.raises(ValueError, match="bijection"):
            apply_permutation(graph, np.zeros(graph.n_nodes, dtype=int))

    def test_rejects_wrong_length(self, graph):
        with pytest.raises(ValueError):
            apply_permutation(graph, np.arange(graph.n_nodes + 1))


class TestReorderings:
    def test_degree_sort_puts_hubs_first(self):
        graph = rmat_graph(300, 3000, seed=5)
        reordered = degree_sort_reorder(graph)
        degrees = reordered.in_degrees()
        # First decile must out-degree the last decile on average.
        assert degrees[:30].mean() > degrees[-30:].mean()

    def test_bfs_improves_locality_on_communities(self, graph):
        shuffled = apply_permutation(
            graph, np.random.default_rng(7).permutation(graph.n_nodes)
        )
        reordered = bfs_reorder(shuffled)
        assert locality_score(reordered) < locality_score(shuffled)

    def test_community_sort_improves_locality(self, graph):
        shuffled = apply_permutation(
            graph, np.random.default_rng(8).permutation(graph.n_nodes)
        )
        reordered = community_sort_reorder(shuffled)
        assert locality_score(reordered) < locality_score(shuffled)

    def test_community_sort_requires_communities(self):
        graph = rmat_graph(50, 200, seed=1)
        with pytest.raises(ValueError, match="community"):
            community_sort_reorder(graph)

    def test_bfs_seed_validation(self, graph):
        with pytest.raises(ValueError):
            bfs_reorder(graph, seed_node=graph.n_nodes)

    def test_bfs_covers_disconnected_components(self):
        # Two disjoint triangles.
        from repro.graphs import Graph

        graph = Graph(
            n_nodes=6,
            src=np.array([0, 1, 2, 3, 4, 5]),
            dst=np.array([1, 2, 0, 4, 5, 3]),
        )
        reordered = bfs_reorder(graph)
        assert reordered.n_edges == 6

    def test_locality_score_bounds(self, graph):
        assert 0.0 <= locality_score(graph) <= 1.0

    def test_locality_score_empty_graph(self):
        from repro.graphs import Graph

        empty = Graph(n_nodes=3, src=np.array([], dtype=int),
                      dst=np.array([], dtype=int))
        assert locality_score(empty) == 0.0
