"""Unit tests for the descriptive-table experiments (Tables 1 and 3)."""

import pytest

from repro.experiments import table1_datasets, table3_setup
from repro.graphs import TABLE1_GRAPHS, TRAINING_CONFIGS


class TestTable1Module:
    def test_one_row_per_registered_graph(self):
        rows = table1_datasets.run()
        assert {row.name for row in rows} == set(TABLE1_GRAPHS)

    def test_avg_degree_derivation(self):
        rows = {row.name: row for row in table1_datasets.run()}
        assert rows["Reddit"].avg_degree == pytest.approx(
            114_615_891 / 232_965
        )

    def test_report_lists_high_degree_group(self):
        text = table1_datasets.report()
        for name in ("ddi", "ppa", "Reddit"):
            assert name in text
        assert "high-degree" in text

    def test_scaled_columns_present(self):
        rows = table1_datasets.run()
        assert all(row.scaled_nodes > 0 for row in rows)
        assert all(row.scaled_edges > 0 for row in rows)


class TestTable3Module:
    def test_covers_all_training_datasets(self):
        configs = table3_setup.run()
        assert {cfg.name for cfg in configs} == set(TRAINING_CONFIGS)

    def test_paper_values_recorded(self):
        paper = table3_setup.PAPER_TABLE3
        assert paper["Yelp"]["hidden"] == 384
        assert paper["Reddit"]["epochs"] == 3000
        assert paper["ogbn-products"]["lr"] == 0.003

    def test_report_shows_paper_and_scaled(self):
        text = table3_setup.report()
        assert "256/64" in text  # paper hidden / scaled hidden
        assert "p/s" in text

    def test_layer_counts_match_paper_exactly(self):
        for cfg in table3_setup.run():
            assert cfg.layers == table3_setup.PAPER_TABLE3[cfg.name]["layers"]
