"""Property-based tests (hypothesis) on the core data structures.

Invariants locked here:

* CSR round-trips arbitrary COO triplets and matches dense algebra.
* CBSR compression/decompression is lossless for row-sparse matrices.
* MaxK keeps exactly k entries, preserves their values, and the pivot
  kernel selects the same value multiset as exact selection.
* The forward SpGEMM and backward SSpMM equal dense references for
  arbitrary graphs and feature matrices.
* §4.3 traffic reductions are consistent identities.
* The Amdahl speedup never exceeds the limit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    CBSRMatrix,
    maxk_forward,
    pivot_select_row,
    speedup,
    speedup_limit,
)
from repro.gpusim import (
    spgemm_execute,
    spgemm_traffic_bytes,
    spgemm_traffic_reduction,
    spmm_traffic_bytes,
    sspmm_execute,
)
from repro.sparse import CSRMatrix, coo_to_csr, partition_edge_groups

# Keep matrices small: correctness is dimension-independent.
SMALL = st.integers(min_value=1, max_value=12)


@st.composite
def coo_triplets(draw):
    n_rows = draw(SMALL)
    n_cols = draw(SMALL)
    n_entries = draw(st.integers(min_value=0, max_value=30))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=n_entries, max_size=n_entries)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=n_entries, max_size=n_entries)
    )
    data = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=n_entries,
            max_size=n_entries,
        )
    )
    return rows, cols, data, (n_rows, n_cols)


@st.composite
def feature_matrix(draw, max_rows=10, max_cols=12):
    n_rows = draw(st.integers(1, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    return draw(
        arrays(
            np.float64,
            (n_rows, n_cols),
            elements=st.floats(-100, 100, allow_nan=False, width=32),
        )
    )


class TestCSRProperties:
    @given(coo_triplets())
    @settings(max_examples=60)
    def test_coo_round_trip_matches_dense_accumulation(self, triplet):
        rows, cols, data, shape = triplet
        matrix = coo_to_csr(rows, cols, data, shape)
        dense = np.zeros(shape)
        for r, c, v in zip(rows, cols, data):
            dense[r, c] += v
        # Entries that sum exactly to zero stay stored; compare as dense.
        np.testing.assert_allclose(matrix.to_dense(), dense, atol=1e-12)

    @given(coo_triplets(), st.integers(1, 6))
    @settings(max_examples=40)
    def test_matmul_matches_dense(self, triplet, width):
        rows, cols, data, shape = triplet
        matrix = coo_to_csr(rows, cols, data, shape)
        x = np.random.default_rng(0).normal(size=(shape[1], width))
        np.testing.assert_allclose(
            matrix.matmul_dense(x), matrix.to_dense() @ x, atol=1e-9
        )

    @given(coo_triplets())
    @settings(max_examples=40)
    def test_transpose_involution(self, triplet):
        rows, cols, data, shape = triplet
        matrix = coo_to_csr(rows, cols, data, shape)
        np.testing.assert_allclose(
            matrix.transpose().transpose().to_dense(), matrix.to_dense()
        )

    @given(coo_triplets(), st.integers(1, 32), st.integers(1, 8))
    @settings(max_examples=40)
    def test_partition_covers_nnz(self, triplet, dim_k, w):
        rows, cols, data, shape = triplet
        matrix = coo_to_csr(rows, cols, data, shape)
        partition = partition_edge_groups(matrix, dim_k, w)
        assert sum(g.size for g in partition.groups) == matrix.nnz


class TestMaxKProperties:
    @given(feature_matrix(), st.data())
    @settings(max_examples=60)
    def test_exactly_k_and_values_preserved(self, x, data):
        k = data.draw(st.integers(1, x.shape[1]))
        out, mask = maxk_forward(x, k)
        assert (mask.sum(axis=1) == k).all()
        np.testing.assert_array_equal(out[mask], x[mask])
        assert (out[~mask] == 0).all()

    @given(feature_matrix(), st.data())
    @settings(max_examples=60)
    def test_survivors_dominate_dropped(self, x, data):
        k = data.draw(st.integers(1, x.shape[1]))
        _, mask = maxk_forward(x, k)
        for i in range(x.shape[0]):
            if mask[i].all():
                continue
            assert x[i, mask[i]].min() >= x[i, ~mask[i]].max() - 1e-9

    @given(
        arrays(np.float64, st.integers(1, 24),
               elements=st.floats(-50, 50, allow_nan=False, width=32)),
        st.data(),
    )
    @settings(max_examples=60)
    def test_pivot_matches_exact_value_multiset(self, row, data):
        k = data.draw(st.integers(1, len(row)))
        result = pivot_select_row(row, k)
        assert result.mask.sum() == k
        chosen = np.sort(row[result.mask])
        exact = np.sort(row)[len(row) - k:]
        np.testing.assert_allclose(chosen, exact)

    @given(feature_matrix(), st.data())
    @settings(max_examples=40)
    def test_cbsr_round_trip(self, x, data):
        k = data.draw(st.integers(1, x.shape[1]))
        sparsified, _ = maxk_forward(x, k)
        cbsr = CBSRMatrix.from_dense_rows(sparsified, k)
        np.testing.assert_allclose(cbsr.to_dense(), sparsified)


class TestKernelProperties:
    @given(coo_triplets(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_spgemm_equals_dense(self, triplet, data):
        rows, cols, data_vals, shape = triplet
        adjacency = coo_to_csr(rows, cols, data_vals, shape)
        dim = data.draw(st.integers(2, 10))
        k = data.draw(st.integers(1, dim))
        x = np.random.default_rng(1).normal(size=(shape[1], dim))
        sparsified, _ = maxk_forward(x, k)
        cbsr = CBSRMatrix.from_dense_rows(sparsified, k)
        np.testing.assert_allclose(
            spgemm_execute(adjacency, cbsr),
            adjacency.to_dense() @ sparsified,
            atol=1e-9,
        )

    @given(coo_triplets(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_sspmm_equals_dense_at_pattern(self, triplet, data):
        rows, cols, data_vals, shape = triplet
        adjacency = coo_to_csr(rows, cols, data_vals, shape)
        dim = data.draw(st.integers(2, 10))
        k = data.draw(st.integers(1, dim))
        rng = np.random.default_rng(2)
        x = rng.normal(size=(shape[1], dim))
        sparsified, _ = maxk_forward(x, k)
        cbsr = CBSRMatrix.from_dense_rows(sparsified, k)
        grad_out = rng.normal(size=(shape[0], dim))
        result = sspmm_execute(adjacency, grad_out, cbsr)
        dense_grad = adjacency.to_dense().T @ grad_out
        expected = dense_grad[
            np.arange(shape[1])[:, None], cbsr.sp_index.astype(np.int64)
        ]
        np.testing.assert_allclose(result.sp_data, expected, atol=1e-9)


class TestAnalyticProperties:
    @given(st.integers(1, 1024), st.integers(1, 10**7), st.data())
    @settings(max_examples=60)
    def test_traffic_reduction_identity(self, dim, nnz, data):
        k = data.draw(st.integers(1, dim))
        assert spgemm_traffic_reduction(dim, k, nnz) == (
            spmm_traffic_bytes(dim, nnz) - spgemm_traffic_bytes(k, nnz)
        )

    @given(st.floats(0, 0.999), st.floats(1.0, 10_000.0))
    @settings(max_examples=100)
    def test_speedup_bounded_by_limit(self, fraction, kernel_speedup):
        assert (
            speedup(fraction, kernel_speedup)
            <= speedup_limit(fraction) + 1e-9
        )

    @given(st.floats(0, 1))
    @settings(max_examples=60)
    def test_limit_at_least_one(self, fraction):
        assert speedup_limit(fraction) >= 1.0


class TestSegmentAndMaxoutProperties:
    @given(feature_matrix(max_rows=12, max_cols=8), st.data())
    @settings(max_examples=40)
    def test_segment_sum_conserves_mass(self, x, data):
        from repro.tensor import Tensor
        from repro.tensor.segment import segment_sum

        n_segments = data.draw(st.integers(1, 6))
        ids = data.draw(
            st.lists(
                st.integers(0, n_segments - 1),
                min_size=x.shape[0],
                max_size=x.shape[0],
            )
        )
        out = segment_sum(Tensor(x), np.array(ids), n_segments)
        np.testing.assert_allclose(
            out.numpy().sum(axis=0), x.sum(axis=0), atol=1e-9
        )

    @given(st.integers(1, 6), st.integers(1, 5), st.integers(1, 4))
    @settings(max_examples=40)
    def test_maxout_dominates_every_group_member(self, rows, groups, size):
        from repro.tensor import Tensor, maxout

        rng = np.random.default_rng(rows * 100 + groups * 10 + size)
        x = rng.normal(size=(rows, groups * size))
        out = maxout(Tensor(x), size).numpy()
        grouped = x.reshape(rows, groups, size)
        np.testing.assert_allclose(out, grouped.max(axis=2))

    @given(st.integers(2, 40), st.data())
    @settings(max_examples=30)
    def test_permutation_preserves_structure(self, n_nodes, data):
        from repro.graphs import Graph, apply_permutation

        n_edges = data.draw(st.integers(0, 3 * n_nodes))
        rng = np.random.default_rng(n_nodes)
        graph = Graph(
            n_nodes=n_nodes,
            src=rng.integers(0, n_nodes, n_edges),
            dst=rng.integers(0, n_nodes, n_edges),
        )
        perm = rng.permutation(n_nodes)
        permuted = apply_permutation(graph, perm)
        assert permuted.n_edges == graph.n_edges
        np.testing.assert_array_equal(
            np.sort(permuted.in_degrees()), np.sort(graph.in_degrees())
        )
        assert permuted.degree_skew() == pytest.approx(graph.degree_skew())

    @given(
        st.integers(1, 256), st.integers(1, 64), st.integers(1, 10_000)
    )
    @settings(max_examples=60)
    def test_mlp_traffic_cut_bounds(self, hidden, k, batch):
        from repro.models import mlp_feature_traffic_cut

        if k > hidden:
            return
        cut = mlp_feature_traffic_cut(hidden, k, batch)
        assert cut < 1.0
        # uint8 index: cut = 1 - 5k/4h, positive whenever 5k < 4h.
        if 5 * k < 4 * hidden:
            assert cut > 0.0
