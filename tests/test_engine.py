"""Tests for the unified training engine and its data-flow strategies."""

import numpy as np
import pytest

from repro.graphs import attach_classification_task, sbm_graph
from repro.models import GNNConfig, MaxKGNN
from repro.training import (
    Engine,
    FullGraphFlow,
    PartitionedFlow,
    SampledFlow,
    SubgraphCache,
    Trainer,
    make_flow,
)
from repro.training.schedulers import EarlyStopping


@pytest.fixture
def graph():
    graph = sbm_graph(180, 4, 8.0, intra_fraction=0.7, seed=9).to_undirected()
    attach_classification_task(graph, n_features=8, signal=0.5, seed=9)
    return graph


def maxk_config():
    return GNNConfig(
        model_type="sage", in_features=8, hidden=16, out_features=4,
        n_layers=2, nonlinearity="maxk", k=4, dropout=0.1,
    )


def make_engine(graph, flow=None, seed=0, **kwargs):
    model = MaxKGNN(graph, maxk_config(), seed=seed)
    return Engine(model, graph, flow, lr=0.01, **kwargs)


class TestEngineFullFlow:
    def test_matches_trainer_bitwise(self, graph):
        """The Trainer shim and a bare engine produce identical runs."""
        trainer = Trainer(MaxKGNN(graph, maxk_config(), seed=0), graph, lr=0.01)
        engine = make_engine(graph, FullGraphFlow(), seed=0)
        a = trainer.fit(12, eval_every=5)
        b = engine.fit(12, eval_every=5)
        assert a.train_losses == b.train_losses
        assert a.val_metrics == b.val_metrics
        assert a.test_metrics == b.test_metrics

    def test_default_flow_is_full(self, graph):
        engine = make_engine(graph)
        assert engine.flow.name == "full"
        result = engine.fit(3, eval_every=2)
        assert result.flow == "full"
        assert len(result.train_losses) == 3
        assert result.batch_sizes == [graph.n_nodes] * 3

    def test_learns_above_chance(self, graph):
        result = make_engine(graph).fit(40, eval_every=10)
        assert result.test_at_best_val > 1.0 / 4

    def test_early_stopping_halts(self, graph):
        engine = make_engine(
            graph, early_stopping=EarlyStopping(patience=1, min_delta=1.0)
        )
        result = engine.fit(50, eval_every=1)
        # An unreachable min_delta stalls immediately: stop on 2nd eval.
        assert len(result.val_metrics) == 2

    def test_validation(self, graph):
        engine = make_engine(graph)
        with pytest.raises(ValueError):
            engine.fit(0)
        with pytest.raises(ValueError):
            engine.fit(5, eval_every=0)
        with pytest.raises(ValueError):
            engine.fit(5, steps_per_batch=0)
        bare = sbm_graph(30, 2, 4.0, seed=0)
        with pytest.raises(ValueError, match="features and labels"):
            Engine(MaxKGNN(graph, maxk_config(), seed=0), bare)


class TestEngineSampledFlow:
    def test_trains_and_records_batches(self, graph):
        flow = SampledFlow(sampler="node", batches_per_epoch=3,
                           sample_size=60, seed=0)
        result = make_engine(graph, flow).fit(6, eval_every=3)
        assert result.flow == "sampled/nodex3"
        assert len(result.train_losses) == 6
        assert len(result.batch_losses) == 18
        assert all(size == 60 for size in result.batch_sizes)

    def test_batches_deterministic_per_slot(self, graph):
        a = SampledFlow(sampler="node", sample_size=50, seed=3)
        b = SampledFlow(sampler="node", sample_size=50, seed=3)
        sub_a = list(a.batches(graph, epoch=0))[0]
        sub_b = list(b.batches(graph, epoch=0))[0]
        np.testing.assert_array_equal(sub_a.features, sub_b.features)

    def test_pool_recycles_subgraphs(self, graph):
        flow = SampledFlow(sampler="node", sample_size=50, seed=0,
                           pool_size=2, cache_size=4)
        first = [list(flow.batches(graph, e))[0] for e in range(2)]
        second = [list(flow.batches(graph, e))[0] for e in range(2, 4)]
        assert first[0] is second[0] and first[1] is second[1]
        assert flow.cache.hits == 2

    def test_eviction_releases_only_evicted_graph(self, graph, monkeypatch):
        released = []

        class _Spy:
            def release(self, matrices):
                matrices = list(matrices)
                released.append(matrices)
                return len(matrices)

        import repro.training.dataflow as dataflow

        monkeypatch.setattr(dataflow, "get_backend", lambda: _Spy())
        # An explicit cache bound below the pool is honoured and evicts.
        flow = SampledFlow(sampler="node", sample_size=40, seed=0,
                           pool_size=5, cache_size=2)
        seen = []
        for epoch in range(5):
            seen.extend(flow.batches(graph, epoch))
        assert flow.cache.evictions == 3
        assert len(released) == 3
        # Each release passes the evicted subgraph's cached CSRs, nothing
        # else (surviving slots and the full graph stay warm).
        for matrices, evicted in zip(released, seen):
            assert all(any(m is c for c in evicted._adj_cache.values())
                       for m in matrices)

    def test_scipy_eviction_keeps_survivors_warm(self, graph):
        """End to end: evicting one slot drops only its wrappers."""
        from repro.sparse import ops

        if "scipy" not in ops.available_backends():
            pytest.skip("scipy backend unavailable")
        with ops.use_backend("scipy"):
            backend = ops.get_backend()
            backend.clear_cache()
            flow = SampledFlow(sampler="node", sample_size=40, seed=0,
                               pool_size=3, cache_size=2)
            engine = make_engine(graph, flow)
            engine.fit(3, eval_every=3)
            # The full graph's wrappers must have survived the evictions.
            full_keys = [
                (id(m.indptr), id(m.indices), id(m.data))
                for m in graph._adj_cache.values()
            ]
            assert flow.cache.evictions > 0
            assert any(key in backend._csr_cache for key in full_keys)

    def test_cache_resets_on_new_graph(self, graph):
        """Pooled slots are per-graph: switching graphs must not serve
        subgraphs sampled from the previous one."""
        other = sbm_graph(120, 3, 6.0, seed=5).to_undirected()
        attach_classification_task(other, n_features=8, seed=5)
        flow = SampledFlow(sampler="node", sample_size=40, seed=0,
                           pool_size=2)
        from_first = list(flow.batches(graph, 0))[0]
        from_second = list(flow.batches(other, 0))[0]
        assert from_first is not from_second
        assert from_second.n_nodes == 40
        # Reusing slot 0 on the new graph serves the new graph's subgraph.
        assert list(flow.batches(other, 0))[0] is from_second

    def test_unpooled_stream_bypasses_cache(self, graph):
        flow = SampledFlow(sampler="node", sample_size=40, seed=0)
        for epoch in range(5):
            list(flow.batches(graph, epoch))
        assert len(flow.cache) == 0
        assert flow.cache.evictions == 0

    def test_cache_defaults_to_pool_size(self):
        assert SampledFlow(pool_size=16).cache.capacity == 16
        assert SampledFlow(pool_size=16, cache_size=8).cache.capacity == 8
        assert SampledFlow().cache.capacity == 8

    def test_khop_flow_trains(self, graph):
        flow = SampledFlow(sampler="khop", batches_per_epoch=2,
                           sample_size=20, n_hops=2, fanout=4, seed=0)
        result = make_engine(graph, flow).fit(4, eval_every=2)
        assert len(result.batch_losses) == 8
        assert all(size >= 1 for size in result.batch_sizes)

    def test_walk_and_edge_flows_train(self, graph):
        for sampler in ("walk", "edge"):
            flow = SampledFlow(sampler=sampler, sample_size=40, seed=0)
            result = make_engine(graph, flow).fit(2, eval_every=1)
            assert len(result.batch_losses) == 2

    def test_custom_callable_sampler(self, graph):
        from repro.graphs import node_sampler

        flow = SampledFlow(sampler=node_sampler, sample_size=45, seed=0)
        result = make_engine(graph, flow).fit(2, eval_every=1)
        assert all(size == 45 for size in result.batch_sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            SampledFlow(sampler="bogus")
        with pytest.raises(ValueError):
            SampledFlow(batches_per_epoch=0)
        with pytest.raises(ValueError):
            SampledFlow(sample_size=0)
        with pytest.raises(ValueError):
            SampledFlow(pool_size=0)
        with pytest.raises(ValueError):
            SampledFlow(cache_size=0)
        with pytest.raises(ValueError):
            SubgraphCache(0)


class TestEnginePartitionedFlow:
    def test_visits_every_part(self, graph):
        flow = PartitionedFlow(n_parts=3, boundary_fraction=0.3, seed=0)
        batches = list(flow.batches(graph, epoch=0))
        assert len(batches) == 3
        covered = sum(b.n_nodes for b in batches)
        assert covered >= graph.n_nodes  # halos overlap the interiors

    def test_partition_computed_once(self, graph):
        flow = PartitionedFlow(n_parts=3, seed=0)
        assert flow.partition_for(graph) is flow.partition_for(graph)

    def test_trains_above_chance(self, graph):
        flow = PartitionedFlow(n_parts=3, boundary_fraction=0.3, seed=0)
        result = make_engine(graph, flow).fit(
            4, eval_every=4, steps_per_batch=4
        )
        assert result.final_test > 1.0 / 4
        assert len(result.batch_losses) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedFlow(n_parts=0)
        with pytest.raises(ValueError):
            PartitionedFlow(n_parts=2, boundary_fraction=1.5)


class TestMakeFlow:
    def test_builds_each_flow(self):
        assert make_flow("full").name == "full"
        assert make_flow("sampled", sampler="node").name == "sampled"
        assert make_flow("partitioned", n_parts=2).name == "partitioned"

    def test_unknown_flow_rejected(self):
        with pytest.raises(ValueError, match="unknown flow"):
            make_flow("streamed")


class TestModelRebinding:
    def test_bind_graph_preserves_parameters(self, graph):
        model = MaxKGNN(graph, maxk_config(), seed=0)
        before = [p.data.copy() for p in model.parameters()]
        sub_nodes = np.arange(0, graph.n_nodes, 2)
        from repro.graphs import induced_subgraph

        subgraph = induced_subgraph(graph, sub_nodes)
        model.bind_graph(subgraph)
        for old, new in zip(before, model.parameters()):
            np.testing.assert_array_equal(old, new.data)
        logits = model(np.asarray(subgraph.features, dtype=np.float64))
        assert logits.shape == (subgraph.n_nodes, 4)
        model.bind_graph(graph)
        assert model(np.asarray(graph.features, dtype=np.float64)).shape == (
            graph.n_nodes, 4,
        )

    def test_optimizer_state_survives_flow_switch(self, graph):
        """One Adam trajectory spans full and sampled batches."""
        engine = make_engine(graph, SampledFlow("node", sample_size=60, seed=0))
        engine.fit(3, eval_every=3)
        t_before = engine.optimizer._t
        engine.flow = FullGraphFlow()
        engine.fit(2, eval_every=2)
        assert engine.optimizer._t == t_before + 2


class TestCliTrain:
    def test_train_command_full(self, capsys):
        from repro.cli import main

        assert main(["train", "--dataset", "Flickr", "--epochs", "3"]) == 0
        out = capsys.readouterr().out
        assert "flow         full" in out

    def test_train_command_sampled(self, capsys):
        from repro.cli import main

        assert main([
            "train", "--dataset", "Flickr", "--epochs", "3",
            "--flow", "sampled", "--sampler", "node",
            "--batches-per-epoch", "2", "--sample-size", "150",
            "--pool-size", "4",
        ]) == 0
        assert "sampled/nodex2" in capsys.readouterr().out

    def test_train_command_micro_batched(self, capsys):
        from repro.cli import main

        assert main([
            "train", "--dataset", "Flickr", "--epochs", "2",
            "--flow", "sampled", "--sampler", "node",
            "--batches-per-epoch", "4", "--sample-size", "80",
            "--pool-size", "4", "--micro-batch", "2",
        ]) == 0
        assert "sampled/nodex4+micro2" in capsys.readouterr().out

    def test_train_command_partitioned(self, capsys):
        from repro.cli import main

        assert main([
            "train", "--dataset", "Flickr", "--epochs", "3",
            "--flow", "partitioned", "--n-parts", "2",
        ]) == 0
        assert "partitioned/2" in capsys.readouterr().out


class TestMicroBatchedFlow:
    def test_merges_groups_and_trains(self, graph):
        from repro.training import MicroBatchedFlow

        inner = SampledFlow(sampler="node", batches_per_epoch=4,
                            sample_size=30, pool_size=4, seed=0)
        flow = MicroBatchedFlow(inner, 2)
        assert flow.describe() == "sampled/nodex4+micro2"
        result = make_engine(graph, flow).fit(3, eval_every=3)
        # 4 inner batches per epoch -> 2 merged steps per epoch.
        assert len(result.batch_losses) == 6
        assert all(size == 60 for size in result.batch_sizes)
        assert result.final_test > 0

    def test_merged_graphs_are_block_diagonal_unions(self, graph):
        from repro.training import MicroBatchedFlow

        inner = SampledFlow(sampler="node", batches_per_epoch=2,
                            sample_size=25, pool_size=2, seed=0)
        flow = MicroBatchedFlow(inner, 2)
        members = list(inner.batches(graph, 0))
        merged = list(flow.batches(graph, 0))[0]
        assert merged.n_nodes == sum(m.n_nodes for m in members)
        assert merged.n_edges == sum(m.n_edges for m in members)
        np.testing.assert_array_equal(
            merged.features,
            np.concatenate([np.asarray(m.features) for m in members]),
        )

    def test_merge_cache_serves_pooled_repeats(self, graph):
        from repro.training import MicroBatchedFlow

        inner = SampledFlow(sampler="node", batches_per_epoch=2,
                            sample_size=25, pool_size=2, seed=0)
        flow = MicroBatchedFlow(inner, 2)
        first = list(flow.batches(graph, 0))[0]
        second = list(flow.batches(graph, 1))[0]  # same pooled slots
        assert second is first
        assert flow.merge_hits == 1 and flow.merge_misses == 1

    def test_trailing_partial_group_still_trains(self, graph):
        from repro.training import MicroBatchedFlow

        inner = SampledFlow(sampler="node", batches_per_epoch=3,
                            sample_size=25, pool_size=3, seed=0)
        flow = MicroBatchedFlow(inner, 2)
        merged = list(flow.batches(graph, 0))
        assert [m.n_nodes for m in merged] == [50, 25]

    def test_make_flow_micro_batch_wrapping(self):
        from repro.training import MicroBatchedFlow
        from repro.training.dataflow import make_flow

        flow = make_flow("sampled", micro_batch=3, sampler="node")
        assert isinstance(flow, MicroBatchedFlow) and flow.size == 3
        assert make_flow("sampled", sampler="node").name == "sampled"
        with pytest.raises(ValueError):
            make_flow("sampled", micro_batch=0)

    def test_validation(self):
        from repro.training import MicroBatchedFlow

        with pytest.raises(ValueError):
            MicroBatchedFlow(SampledFlow(), 0)
        with pytest.raises(ValueError):
            MicroBatchedFlow(SampledFlow(), 2, cache_size=0)

    def test_bitwise_equal_to_manual_batching(self, graph):
        """One merged step equals training on the explicit disjoint union."""
        from repro.graphs import batch_graphs
        from repro.training import MicroBatchedFlow

        inner = SampledFlow(sampler="node", batches_per_epoch=2,
                            sample_size=30, pool_size=2, seed=0)
        members = list(inner.batches(graph, 0))
        manual = batch_graphs(members)

        engine_a = make_engine(graph, MicroBatchedFlow(inner, 2), seed=0)
        loss_a = engine_a.train_epoch(0)

        class _Fixed:
            name = "fixed"

            def batches(self, _graph, _epoch):
                yield manual

            def describe(self):
                return "fixed"

        engine_b = make_engine(graph, _Fixed(), seed=0)
        loss_b = engine_b.train_epoch(0)
        assert loss_a == loss_b


class TestSampledFlowSizeHeuristics:
    """The labelled-coverage floor of the default batch size (Yelp masks)."""

    def _multilabel_graph(self, rare_rate=0.02, train_fraction=0.25, seed=0):
        rng = np.random.default_rng(seed)
        graph = sbm_graph(200, 4, 6.0, seed=seed).to_undirected()
        from repro.graphs import attach_multilabel_task

        attach_multilabel_task(graph, n_features=6, n_labels=3, seed=seed)
        # Plant a rare label column and a sparse training mask.
        labels = np.asarray(graph.labels)
        labels[:, 2] = rng.random(graph.n_nodes) < rare_rate
        mask = rng.random(graph.n_nodes) < train_fraction
        mask[np.where(labels[:, 2])[0][:1]] = True  # keep it learnable
        graph.labels = labels
        graph.train_mask = mask
        return graph

    def test_explicit_sample_size_is_honoured(self, graph):
        flow = SampledFlow(sampler="node", sample_size=7)
        assert flow._size(graph) == 7

    def test_single_label_floor_covers_training_mask(self, graph):
        sparse = sbm_graph(200, 4, 6.0, seed=1).to_undirected()
        attach_classification_task(sparse, n_features=6, seed=1)
        mask = np.zeros(200, dtype=bool)
        mask[:10] = True  # 5% labelled
        sparse.train_mask = mask
        flow = SampledFlow(sampler="node", batches_per_epoch=50)
        # Old heuristic: 200 // 100 = 2 nodes; the floor lifts it to the
        # expected-one-training-node size of 1 / 0.05 = 20.
        assert flow._size(sparse) == 20

    def test_multilabel_floor_uses_rarest_label(self):
        graph = self._multilabel_graph()
        flow = SampledFlow(sampler="node", batches_per_epoch=50)
        rate = (
            np.asarray(graph.labels)
            * np.asarray(graph.train_mask)[:, None]
        ).mean(axis=0)
        expected = int(np.ceil(1.0 / rate[rate > 0].min()))
        assert flow._size(graph) == min(graph.n_nodes, expected)
        assert flow._size(graph) > 200 // 100

    def test_floor_caches_per_graph(self, graph):
        flow = SampledFlow(sampler="node")
        assert flow._size(graph) == flow._size(graph)
        assert flow._floor_graph is graph

    def test_unlabelled_graph_keeps_plain_heuristic(self):
        plain = sbm_graph(100, 3, 5.0, seed=2).to_undirected()
        flow = SampledFlow(sampler="node", batches_per_epoch=2)
        assert flow._size(plain) == 25

    def test_sampled_flow_trains_multilabel_without_nan_epochs(self):
        """Regression: Yelp-style masks with many small default batches."""
        graph = self._multilabel_graph()
        flow = SampledFlow(sampler="node", batches_per_epoch=6, seed=0,
                           pool_size=6)
        config = GNNConfig(
            model_type="sage", in_features=6, hidden=8,
            out_features=int(np.asarray(graph.labels).shape[1]), n_layers=2,
            nonlinearity="maxk", k=2,
        )
        engine = Engine(MaxKGNN(graph, config, seed=0), graph, flow, lr=0.01)
        result = engine.fit(4, eval_every=2)
        assert np.isfinite(result.train_losses).all()
        assert len(result.batch_losses) >= 4


class TestCacheReleaseOnReset:
    def test_graph_switch_releases_old_pool(self, graph, monkeypatch):
        released = []

        class _Spy:
            def release(self, matrices):
                matrices = list(matrices)
                released.append(matrices)
                return len(matrices)

        import repro.training.dataflow as dataflow

        monkeypatch.setattr(dataflow, "get_backend", lambda: _Spy())
        flow = SampledFlow(sampler="node", batches_per_epoch=2,
                           sample_size=40, seed=0, pool_size=2)
        list(flow.batches(graph, 0))
        assert len(flow.cache) == 2
        other = sbm_graph(100, 3, 6.0, seed=7).to_undirected()
        attach_classification_task(other, n_features=8, seed=7)
        list(flow.batches(other, 0))
        # Both of the abandoned pool's subgraphs were released.
        assert len(released) >= 2

    def test_micro_flow_releases_merged_on_graph_switch(self, graph,
                                                        monkeypatch):
        released = []

        class _Spy:
            def release(self, matrices):
                released.append(list(matrices))
                return 0

        import repro.training.dataflow as dataflow

        from repro.training import MicroBatchedFlow

        inner = SampledFlow(sampler="node", batches_per_epoch=2,
                            sample_size=25, pool_size=2, seed=0)
        flow = MicroBatchedFlow(inner, 2)
        list(flow.batches(graph, 0))
        assert len(flow._merged) == 1
        monkeypatch.setattr(dataflow, "get_backend", lambda: _Spy())
        other = sbm_graph(100, 3, 6.0, seed=7).to_undirected()
        attach_classification_task(other, n_features=8, seed=7)
        list(flow.batches(other, 0))
        # The old parent graph's merged union was dropped and released.
        assert released and len(flow._merged) == 1

    def test_unpooled_stream_releases_each_batch(self, graph, monkeypatch):
        released = []

        class _Spy:
            def release(self, matrices):
                released.append(list(matrices))
                return 0

        import repro.training.dataflow as dataflow

        monkeypatch.setattr(dataflow, "get_backend", lambda: _Spy())
        flow = SampledFlow(sampler="node", batches_per_epoch=3,
                           sample_size=40, seed=0)  # pool_size=None
        for epoch in range(2):
            for subgraph in flow.batches(graph, epoch):
                subgraph.adjacency("sage")  # simulate one training step
        # Every one-shot subgraph was released right after its step.
        assert len(released) == 6
