"""Tests for the unified training engine and its data-flow strategies."""

import numpy as np
import pytest

from repro.graphs import attach_classification_task, sbm_graph
from repro.models import GNNConfig, MaxKGNN
from repro.training import (
    Engine,
    FullGraphFlow,
    PartitionedFlow,
    SampledFlow,
    SubgraphCache,
    Trainer,
    make_flow,
)
from repro.training.schedulers import EarlyStopping


@pytest.fixture
def graph():
    graph = sbm_graph(180, 4, 8.0, intra_fraction=0.7, seed=9).to_undirected()
    attach_classification_task(graph, n_features=8, signal=0.5, seed=9)
    return graph


def maxk_config():
    return GNNConfig(
        model_type="sage", in_features=8, hidden=16, out_features=4,
        n_layers=2, nonlinearity="maxk", k=4, dropout=0.1,
    )


def make_engine(graph, flow=None, seed=0, **kwargs):
    model = MaxKGNN(graph, maxk_config(), seed=seed)
    return Engine(model, graph, flow, lr=0.01, **kwargs)


class TestEngineFullFlow:
    def test_matches_trainer_bitwise(self, graph):
        """The Trainer shim and a bare engine produce identical runs."""
        trainer = Trainer(MaxKGNN(graph, maxk_config(), seed=0), graph, lr=0.01)
        engine = make_engine(graph, FullGraphFlow(), seed=0)
        a = trainer.fit(12, eval_every=5)
        b = engine.fit(12, eval_every=5)
        assert a.train_losses == b.train_losses
        assert a.val_metrics == b.val_metrics
        assert a.test_metrics == b.test_metrics

    def test_default_flow_is_full(self, graph):
        engine = make_engine(graph)
        assert engine.flow.name == "full"
        result = engine.fit(3, eval_every=2)
        assert result.flow == "full"
        assert len(result.train_losses) == 3
        assert result.batch_sizes == [graph.n_nodes] * 3

    def test_learns_above_chance(self, graph):
        result = make_engine(graph).fit(40, eval_every=10)
        assert result.test_at_best_val > 1.0 / 4

    def test_early_stopping_halts(self, graph):
        engine = make_engine(
            graph, early_stopping=EarlyStopping(patience=1, min_delta=1.0)
        )
        result = engine.fit(50, eval_every=1)
        # An unreachable min_delta stalls immediately: stop on 2nd eval.
        assert len(result.val_metrics) == 2

    def test_validation(self, graph):
        engine = make_engine(graph)
        with pytest.raises(ValueError):
            engine.fit(0)
        with pytest.raises(ValueError):
            engine.fit(5, eval_every=0)
        with pytest.raises(ValueError):
            engine.fit(5, steps_per_batch=0)
        bare = sbm_graph(30, 2, 4.0, seed=0)
        with pytest.raises(ValueError, match="features and labels"):
            Engine(MaxKGNN(graph, maxk_config(), seed=0), bare)


class TestEngineSampledFlow:
    def test_trains_and_records_batches(self, graph):
        flow = SampledFlow(sampler="node", batches_per_epoch=3,
                           sample_size=60, seed=0)
        result = make_engine(graph, flow).fit(6, eval_every=3)
        assert result.flow == "sampled/nodex3"
        assert len(result.train_losses) == 6
        assert len(result.batch_losses) == 18
        assert all(size == 60 for size in result.batch_sizes)

    def test_batches_deterministic_per_slot(self, graph):
        a = SampledFlow(sampler="node", sample_size=50, seed=3)
        b = SampledFlow(sampler="node", sample_size=50, seed=3)
        sub_a = list(a.batches(graph, epoch=0))[0]
        sub_b = list(b.batches(graph, epoch=0))[0]
        np.testing.assert_array_equal(sub_a.features, sub_b.features)

    def test_pool_recycles_subgraphs(self, graph):
        flow = SampledFlow(sampler="node", sample_size=50, seed=0,
                           pool_size=2, cache_size=4)
        first = [list(flow.batches(graph, e))[0] for e in range(2)]
        second = [list(flow.batches(graph, e))[0] for e in range(2, 4)]
        assert first[0] is second[0] and first[1] is second[1]
        assert flow.cache.hits == 2

    def test_eviction_clears_backend_cache(self, graph, monkeypatch):
        calls = []

        class _Spy:
            def clear_cache(self):
                calls.append(1)

        import repro.training.dataflow as dataflow

        monkeypatch.setattr(dataflow, "get_backend", lambda: _Spy())
        # An explicit cache bound below the pool is honoured and evicts.
        flow = SampledFlow(sampler="node", sample_size=40, seed=0,
                           pool_size=5, cache_size=2)
        for epoch in range(5):
            list(flow.batches(graph, epoch))
        assert flow.cache.evictions == 3
        assert len(calls) == 3
        assert len(flow.cache) == 2

    def test_cache_resets_on_new_graph(self, graph):
        """Pooled slots are per-graph: switching graphs must not serve
        subgraphs sampled from the previous one."""
        other = sbm_graph(120, 3, 6.0, seed=5).to_undirected()
        attach_classification_task(other, n_features=8, seed=5)
        flow = SampledFlow(sampler="node", sample_size=40, seed=0,
                           pool_size=2)
        from_first = list(flow.batches(graph, 0))[0]
        from_second = list(flow.batches(other, 0))[0]
        assert from_first is not from_second
        assert from_second.n_nodes == 40
        # Reusing slot 0 on the new graph serves the new graph's subgraph.
        assert list(flow.batches(other, 0))[0] is from_second

    def test_unpooled_stream_bypasses_cache(self, graph):
        flow = SampledFlow(sampler="node", sample_size=40, seed=0)
        for epoch in range(5):
            list(flow.batches(graph, epoch))
        assert len(flow.cache) == 0
        assert flow.cache.evictions == 0

    def test_cache_defaults_to_pool_size(self):
        assert SampledFlow(pool_size=16).cache.capacity == 16
        assert SampledFlow(pool_size=16, cache_size=8).cache.capacity == 8
        assert SampledFlow().cache.capacity == 8

    def test_khop_flow_trains(self, graph):
        flow = SampledFlow(sampler="khop", batches_per_epoch=2,
                           sample_size=20, n_hops=2, fanout=4, seed=0)
        result = make_engine(graph, flow).fit(4, eval_every=2)
        assert len(result.batch_losses) == 8
        assert all(size >= 1 for size in result.batch_sizes)

    def test_walk_and_edge_flows_train(self, graph):
        for sampler in ("walk", "edge"):
            flow = SampledFlow(sampler=sampler, sample_size=40, seed=0)
            result = make_engine(graph, flow).fit(2, eval_every=1)
            assert len(result.batch_losses) == 2

    def test_custom_callable_sampler(self, graph):
        from repro.graphs import node_sampler

        flow = SampledFlow(sampler=node_sampler, sample_size=45, seed=0)
        result = make_engine(graph, flow).fit(2, eval_every=1)
        assert all(size == 45 for size in result.batch_sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            SampledFlow(sampler="bogus")
        with pytest.raises(ValueError):
            SampledFlow(batches_per_epoch=0)
        with pytest.raises(ValueError):
            SampledFlow(sample_size=0)
        with pytest.raises(ValueError):
            SampledFlow(pool_size=0)
        with pytest.raises(ValueError):
            SampledFlow(cache_size=0)
        with pytest.raises(ValueError):
            SubgraphCache(0)


class TestEnginePartitionedFlow:
    def test_visits_every_part(self, graph):
        flow = PartitionedFlow(n_parts=3, boundary_fraction=0.3, seed=0)
        batches = list(flow.batches(graph, epoch=0))
        assert len(batches) == 3
        covered = sum(b.n_nodes for b in batches)
        assert covered >= graph.n_nodes  # halos overlap the interiors

    def test_partition_computed_once(self, graph):
        flow = PartitionedFlow(n_parts=3, seed=0)
        assert flow.partition_for(graph) is flow.partition_for(graph)

    def test_trains_above_chance(self, graph):
        flow = PartitionedFlow(n_parts=3, boundary_fraction=0.3, seed=0)
        result = make_engine(graph, flow).fit(
            4, eval_every=4, steps_per_batch=4
        )
        assert result.final_test > 1.0 / 4
        assert len(result.batch_losses) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedFlow(n_parts=0)
        with pytest.raises(ValueError):
            PartitionedFlow(n_parts=2, boundary_fraction=1.5)


class TestMakeFlow:
    def test_builds_each_flow(self):
        assert make_flow("full").name == "full"
        assert make_flow("sampled", sampler="node").name == "sampled"
        assert make_flow("partitioned", n_parts=2).name == "partitioned"

    def test_unknown_flow_rejected(self):
        with pytest.raises(ValueError, match="unknown flow"):
            make_flow("streamed")


class TestModelRebinding:
    def test_bind_graph_preserves_parameters(self, graph):
        model = MaxKGNN(graph, maxk_config(), seed=0)
        before = [p.data.copy() for p in model.parameters()]
        sub_nodes = np.arange(0, graph.n_nodes, 2)
        from repro.graphs import induced_subgraph

        subgraph = induced_subgraph(graph, sub_nodes)
        model.bind_graph(subgraph)
        for old, new in zip(before, model.parameters()):
            np.testing.assert_array_equal(old, new.data)
        logits = model(np.asarray(subgraph.features, dtype=np.float64))
        assert logits.shape == (subgraph.n_nodes, 4)
        model.bind_graph(graph)
        assert model(np.asarray(graph.features, dtype=np.float64)).shape == (
            graph.n_nodes, 4,
        )

    def test_optimizer_state_survives_flow_switch(self, graph):
        """One Adam trajectory spans full and sampled batches."""
        engine = make_engine(graph, SampledFlow("node", sample_size=60, seed=0))
        engine.fit(3, eval_every=3)
        t_before = engine.optimizer._t
        engine.flow = FullGraphFlow()
        engine.fit(2, eval_every=2)
        assert engine.optimizer._t == t_before + 2


class TestCliTrain:
    def test_train_command_full(self, capsys):
        from repro.cli import main

        assert main(["train", "--dataset", "Flickr", "--epochs", "3"]) == 0
        out = capsys.readouterr().out
        assert "flow         full" in out

    def test_train_command_sampled(self, capsys):
        from repro.cli import main

        assert main([
            "train", "--dataset", "Flickr", "--epochs", "3",
            "--flow", "sampled", "--sampler", "node",
            "--batches-per-epoch", "2", "--sample-size", "150",
            "--pool-size", "4",
        ]) == 0
        assert "sampled/nodex2" in capsys.readouterr().out

    def test_train_command_partitioned(self, capsys):
        from repro.cli import main

        assert main([
            "train", "--dataset", "Flickr", "--epochs", "3",
            "--flow", "partitioned", "--n-parts", "2",
        ]) == 0
        assert "partitioned/2" in capsys.readouterr().out
