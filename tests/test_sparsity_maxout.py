"""Tests for the sparsity-regularity analysis (§2.3) and maxout."""

import numpy as np
import pytest

from repro.core import (
    dropout_sparsify,
    fatrelu_sparsify,
    regularity_report,
    relu_sparsify,
    row_nnz_profile,
)
from repro.models import ApproximatorMLP
from repro.tensor import Tensor, maxout
from tests.test_tensor import check_gradient


@pytest.fixture(scope="module")
def features():
    return np.random.default_rng(17).normal(size=(400, 128))


class TestSparsifiers:
    def test_dropout_density(self, features):
        sparse = dropout_sparsify(features, p=0.75, seed=0)
        assert (sparse != 0).mean() == pytest.approx(0.25, abs=0.02)

    def test_dropout_preserves_kept_values(self, features):
        sparse = dropout_sparsify(features, p=0.5, seed=1)
        kept = sparse != 0
        np.testing.assert_array_equal(sparse[kept], features[kept])

    def test_dropout_validation(self, features):
        with pytest.raises(ValueError):
            dropout_sparsify(features, p=1.0)

    def test_relu_zeroes_negatives(self, features):
        sparse = relu_sparsify(features)
        assert (sparse >= 0).all()
        assert (sparse != 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_fatrelu_threshold_controls_density(self, features):
        lo = fatrelu_sparsify(features, 0.0)
        hi = fatrelu_sparsify(features, 1.0)
        assert (hi != 0).mean() < (lo != 0).mean()

    def test_fatrelu_validation(self, features):
        with pytest.raises(ValueError):
            fatrelu_sparsify(features, -0.1)

    def test_row_nnz_profile(self):
        x = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0]])
        np.testing.assert_array_equal(row_nnz_profile(x), [2, 0])
        with pytest.raises(ValueError):
            row_nnz_profile(np.ones(3))


class TestRegularityReport:
    """The quantitative version of the paper's §2.3 argument."""

    @pytest.fixture(scope="class")
    def report(self):
        x = np.random.default_rng(18).normal(size=(400, 128))
        return regularity_report(x, k=16, seed=0)

    def test_densities_matched(self, report):
        for name in ("maxk", "dropout", "fatrelu"):
            assert report[name].density == pytest.approx(16 / 128, abs=0.02)

    def test_maxk_is_perfectly_regular(self, report):
        assert report["maxk"].irregularity == 0.0
        assert report["maxk"].padding_overhead == 0.0
        assert report["maxk"].row_nnz_std == 0.0

    def test_irregular_methods_waste_padding(self, report):
        for name in ("dropout", "fatrelu"):
            assert report[name].irregularity > 0.05
            assert report[name].padding_overhead > 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            regularity_report(np.ones(4), 2)
        with pytest.raises(ValueError):
            regularity_report(np.ones((3, 4)), 0)


class TestMaxout:
    def test_output_width_shrinks(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 12)))
        assert maxout(x, 4).shape == (5, 3)

    def test_values_are_group_maxima(self):
        x = Tensor(np.array([[1.0, 5.0, -2.0, 0.0]]))
        np.testing.assert_allclose(maxout(x, 2).numpy(), [[5.0, 0.0]])

    def test_gradient_routes_to_winner(self):
        x = Tensor(np.array([[1.0, 5.0, -2.0, 0.0]]), requires_grad=True)
        maxout(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0, 1.0]])

    def test_gradient_finite_difference(self):
        check_gradient(lambda x: (maxout(x, 3) ** 2).sum(), (4, 6), seed=19)

    def test_rejects_indivisible_groups(self):
        with pytest.raises(ValueError):
            maxout(Tensor(np.ones((2, 5))), 2)

    def test_maxout_approximator_learns(self):
        from repro.models import fit_function, approximation_error

        rng = np.random.default_rng(20)
        x = rng.uniform(-1, 1, size=(64, 1))
        model = ApproximatorMLP(1, 16, 1, nonlinearity="maxout", seed=0)
        fit_function(model, x, x ** 2, epochs=200)
        assert approximation_error(model, x, x ** 2) < 0.01

    def test_maxout_width_validation(self):
        with pytest.raises(ValueError):
            ApproximatorMLP(1, 10, 1, nonlinearity="maxout")
