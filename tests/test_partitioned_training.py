"""Tests for partition-parallel and sampled training with MaxK models."""

import numpy as np
import pytest

from repro.graphs import attach_classification_task, sbm_graph
from repro.models import GNNConfig, MaxKGNN
from repro.training import (
    PartitionedTrainer,
    SampledTrainer,
    copy_parameters,
)


@pytest.fixture
def graph():
    graph = sbm_graph(180, 4, 8.0, intra_fraction=0.7, seed=9).to_undirected()
    attach_classification_task(graph, n_features=8, signal=0.5, seed=9)
    return graph


def maxk_config():
    return GNNConfig(
        model_type="sage", in_features=8, hidden=16, out_features=4,
        n_layers=2, nonlinearity="maxk", k=4, dropout=0.1,
    )


class TestCopyParameters:
    def test_round_trip(self, graph):
        a = MaxKGNN(graph, maxk_config(), seed=0)
        b = MaxKGNN(graph, maxk_config(), seed=1)
        copy_parameters(a, b)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_shape_mismatch_rejected(self, graph):
        a = MaxKGNN(graph, maxk_config(), seed=0)
        other = GNNConfig("sage", 8, 32, 4, 2, "maxk", 4)
        b = MaxKGNN(graph, other, seed=0)
        with pytest.raises(ValueError):
            copy_parameters(a, b)


class TestPartitionedTrainer:
    def test_training_reduces_loss(self, graph):
        trainer = PartitionedTrainer(
            graph, maxk_config(), n_parts=3, boundary_fraction=0.3, lr=0.01
        )
        result = trainer.fit(rounds=3, epochs_per_part=3)
        assert len(result.round_losses) > 0
        assert result.round_losses[-1] < result.round_losses[0]

    def test_full_graph_evaluation_above_chance(self, graph):
        trainer = PartitionedTrainer(
            graph, maxk_config(), n_parts=3, boundary_fraction=0.3, lr=0.01
        )
        result = trainer.fit(rounds=4, epochs_per_part=4)
        assert result.test_metric > 1.0 / 4

    def test_subgraph_sizes_recorded(self, graph):
        trainer = PartitionedTrainer(graph, maxk_config(), n_parts=2)
        result = trainer.fit(rounds=1, epochs_per_part=1)
        assert all(size > 0 for size in result.subgraph_sizes)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            PartitionedTrainer(graph, maxk_config(), n_parts=0)
        trainer = PartitionedTrainer(graph, maxk_config(), n_parts=2)
        with pytest.raises(ValueError):
            trainer.fit(rounds=0)

    def test_maxk_config_requires_k(self, graph):
        config = GNNConfig("sage", 8, 16, 4, 2, "relu")
        # ReLU configs are fine too — MaxK is optional here.
        trainer = PartitionedTrainer(graph, config, n_parts=2)
        result = trainer.fit(rounds=1, epochs_per_part=1)
        assert result.round_losses


class TestSampledTrainer:
    def test_training_reduces_loss(self, graph):
        trainer = SampledTrainer(graph, maxk_config(), sample_size=90, lr=0.01)
        result = trainer.fit(rounds=5, epochs_per_sample=3)
        assert result.round_losses[-1] < result.round_losses[0]

    def test_subgraphs_are_sampled_size(self, graph):
        trainer = SampledTrainer(graph, maxk_config(), sample_size=60)
        result = trainer.fit(rounds=2, epochs_per_sample=1)
        assert all(size == 60 for size in result.subgraph_sizes)

    def test_generalises_above_chance(self, graph):
        trainer = SampledTrainer(graph, maxk_config(), sample_size=120, lr=0.01)
        result = trainer.fit(rounds=6, epochs_per_sample=4)
        assert result.test_metric > 1.0 / 4

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            SampledTrainer(graph, maxk_config(), sample_size=0)
        trainer = SampledTrainer(graph, maxk_config(), sample_size=50)
        with pytest.raises(ValueError):
            trainer.fit(rounds=0)
