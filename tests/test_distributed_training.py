"""Tests for simulated multi-GPU data-parallel training + importance sampling.

Covers the DistributedFlow contract (replica-sharded rounds, deterministic
fixed-order gradient all-reduce, R=1 bit-identity with the sequential inner
flow, fixed-seed reproducibility at R>1), the ReplicaGradients reduction
math, the gpusim placement/communication report, and the degree-weighted
GraphSAINT importance samplers with their unbiased loss normalisation.
"""

import numpy as np
import pytest

from repro.gpusim import (
    MultiGpuEpochModel,
    PartitionStats,
    ring_allreduce_time,
    shard_stats,
)
from repro.graphs import (
    attach_classification_task,
    attach_multilabel_task,
    degree_node_probabilities,
    edge_sampler,
    node_sampler,
    sbm_graph,
)
from repro.models import GNNConfig, MaxKGNN
from repro.sparse import ops
from repro.tensor import Tensor, weighted_cross_entropy
from repro.training import (
    BatchPlan,
    DistributedFlow,
    Engine,
    FullGraphFlow,
    PartitionedFlow,
    ReplicaGradients,
    SampledFlow,
    make_flow,
)


@pytest.fixture
def graph():
    graph = sbm_graph(180, 4, 8.0, intra_fraction=0.7, seed=9).to_undirected()
    attach_classification_task(graph, n_features=8, signal=0.5, seed=9)
    return graph


def maxk_config():
    return GNNConfig(
        model_type="sage", in_features=8, hidden=16, out_features=4,
        n_layers=2, nonlinearity="maxk", k=4, dropout=0.1,
    )


def make_engine(graph, flow, seed=0):
    return Engine(MaxKGNN(graph, maxk_config(), seed=seed), graph, flow,
                  lr=0.01)


class TestRoundSharding:
    def test_rounds_chunk_the_inner_schedule(self, graph):
        flow = DistributedFlow(PartitionedFlow(n_parts=5, seed=0), 2)
        rounds = flow.rounds(graph, epoch=0)
        assert [len(r) for r in rounds] == [2, 2, 1]

    def test_single_replica_rounds_are_singletons(self, graph):
        flow = DistributedFlow(PartitionedFlow(n_parts=3, seed=0), 1)
        rounds = flow.rounds(graph, epoch=0)
        assert [len(r) for r in rounds] == [1, 1, 1]

    def test_unschedulable_inner_rejected(self, graph):
        flow = DistributedFlow(FullGraphFlow(), 2)
        with pytest.raises(ValueError, match="no deterministic"):
            flow.rounds(graph, epoch=0)

    def test_describe_names_replicas_and_inner(self):
        flow = DistributedFlow(PartitionedFlow(n_parts=4, seed=0), 3)
        assert flow.describe() == "distributed[3]/partitioned/4"

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedFlow(PartitionedFlow(n_parts=2), 0)

    def test_batches_fall_back_to_inner_stream(self, graph):
        inner = PartitionedFlow(n_parts=3, seed=0)
        flow = DistributedFlow(PartitionedFlow(n_parts=3, seed=0), 2)
        ours = list(flow.batches(graph, epoch=0))
        theirs = list(inner.batches(graph, epoch=0))
        assert len(ours) == len(theirs) == 3
        for a, b in zip(ours, theirs):
            np.testing.assert_array_equal(a.features, b.features)


class TestTrajectoryIdentity:
    def test_r1_bit_identical_to_partitioned(self, graph):
        """The acceptance gate: R=1 replays PartitionedFlow bit for bit."""
        sequential = make_engine(
            graph, PartitionedFlow(n_parts=3, boundary_fraction=0.3, seed=0)
        ).fit(8, eval_every=2)
        distributed = make_engine(
            graph,
            DistributedFlow(
                PartitionedFlow(n_parts=3, boundary_fraction=0.3, seed=0), 1
            ),
        ).fit(8, eval_every=2)
        assert sequential.train_losses == distributed.train_losses
        assert sequential.batch_losses == distributed.batch_losses
        assert sequential.val_metrics == distributed.val_metrics
        assert sequential.test_metrics == distributed.test_metrics

    def test_r1_bit_identical_to_sampled(self, graph):
        """Sharding composes with the pooled sampled flow too."""
        def flow():
            return SampledFlow(sampler="node", batches_per_epoch=4,
                               sample_size=40, pool_size=4, seed=0)

        sequential = make_engine(graph, flow()).fit(5, eval_every=2)
        distributed = make_engine(
            graph, DistributedFlow(flow(), 1)
        ).fit(5, eval_every=2)
        assert sequential.train_losses == distributed.train_losses
        assert sequential.batch_losses == distributed.batch_losses

    def test_fixed_seed_reproducible_at_r2(self, graph):
        def run():
            return make_engine(
                graph, DistributedFlow(PartitionedFlow(n_parts=4, seed=0), 2)
            ).fit(6, eval_every=2)

        first, second = run(), run()
        assert first.train_losses == second.train_losses
        assert first.val_metrics == second.val_metrics

    def test_r2_changes_the_step_structure(self, graph):
        """Two replicas per round halve the optimizer steps per epoch."""
        sequential = make_engine(
            graph, PartitionedFlow(n_parts=4, seed=0)
        )
        distributed = make_engine(
            graph, DistributedFlow(PartitionedFlow(n_parts=4, seed=0), 2)
        )
        sequential.fit(3, eval_every=3)
        distributed.fit(3, eval_every=3)
        assert sequential.optimizer._t == 12
        assert distributed.optimizer._t == 6

    def test_r2_trains_above_chance(self, graph):
        flow = DistributedFlow(
            PartitionedFlow(n_parts=4, boundary_fraction=0.3, seed=0), 2
        )
        result = make_engine(graph, flow).fit(
            8, eval_every=4, steps_per_batch=2
        )
        assert result.final_test > 1.0 / 4
        assert np.isfinite(result.train_losses).all()

    def test_unlabelled_batches_are_skipped(self, graph):
        graph.train_mask = np.zeros(graph.n_nodes, dtype=bool)
        engine = make_engine(
            graph, DistributedFlow(PartitionedFlow(n_parts=3, seed=0), 2)
        )
        loss = engine.train_epoch(0)
        assert np.isnan(loss)
        assert engine.optimizer._t == 0


class TestReplicaGradients:
    def _params(self):
        a = Tensor(np.zeros((2, 2)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        return [a, b]

    def test_reduce_averages_in_fixed_order(self):
        params = self._params()
        store = ReplicaGradients(params, 2)
        grads = [
            [np.full((2, 2), 1.0), np.full(3, 2.0)],
            [np.full((2, 2), 3.0), np.full(3, 6.0)],
        ]
        for replica, (ga, gb) in enumerate(grads):
            params[0].grad, params[1].grad = ga, gb
            store.capture(replica)
        store.reduce([0, 1])
        np.testing.assert_array_equal(params[0].grad, np.full((2, 2), 2.0))
        np.testing.assert_array_equal(params[1].grad, np.full(3, 4.0))

    def test_single_participant_is_identity(self):
        params = self._params()
        store = ReplicaGradients(params, 2)
        rng = np.random.default_rng(0)
        ga, gb = rng.normal(size=(2, 2)), rng.normal(size=3)
        params[0].grad, params[1].grad = ga.copy(), gb.copy()
        store.capture(1)
        store.reduce([1])
        assert params[0].grad.tobytes() == ga.tobytes()
        assert params[1].grad.tobytes() == gb.tobytes()

    def test_untouched_parameter_keeps_none_grad(self):
        params = self._params()
        store = ReplicaGradients(params, 2)
        params[0].grad = np.ones((2, 2))
        params[1].grad = None
        store.capture(0)
        params[0].grad = np.full((2, 2), 3.0)
        params[1].grad = None
        store.capture(1)
        store.reduce([0, 1])
        np.testing.assert_array_equal(params[0].grad, np.full((2, 2), 2.0))
        assert params[1].grad is None

    def test_partial_presence_still_averages_over_participants(self):
        """The round objective is the participants' mean loss, so a grad
        one replica is missing is averaged as that replica contributing 0
        mass — divided by the participant count, not the source count."""
        params = self._params()
        store = ReplicaGradients(params, 2)
        params[0].grad = np.full((2, 2), 4.0)
        params[1].grad = np.full(3, 4.0)
        store.capture(0)
        params[0].grad = np.full((2, 2), 2.0)
        params[1].grad = None
        store.capture(1)
        store.reduce([0, 1])
        np.testing.assert_array_equal(params[0].grad, np.full((2, 2), 3.0))
        np.testing.assert_array_equal(params[1].grad, np.full(3, 2.0))

    def test_adopts_persistent_grad_buffers(self):
        params = self._params()
        for p in params:
            p._grad_buffer = np.empty_like(p.data)
        store = ReplicaGradients(params, 1)
        params[0].grad = np.ones((2, 2))
        params[1].grad = np.ones(3)
        store.capture(0)
        store.reduce([0])
        assert params[0].grad is params[0]._grad_buffer
        assert params[1].grad is params[1]._grad_buffer

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaGradients(self._params(), 0)
        store = ReplicaGradients(self._params(), 1)
        with pytest.raises(ValueError):
            store.reduce([])


@pytest.fixture(params=ops.available_backends())
def backend(request):
    with ops.use_backend(request.param):
        yield request.param


class TestSparseGradientExchange:
    def _params(self, shapes=((4, 8), (5,))):
        return [Tensor(np.zeros(shape), requires_grad=True)
                for shape in shapes]

    @staticmethod
    def _oracle_select(corrected, k):
        """Reference top-k: largest |value|, ties to the lower index."""
        if k >= corrected.size:
            return corrected.copy()
        order = np.argsort(-np.abs(corrected), kind="stable")
        selected = np.zeros_like(corrected)
        selected[order[:k]] = corrected[order[:k]]
        return selected

    def test_residual_reinjects_dropped_mass(self):
        """The error-feedback contract, deterministically: mass dropped in
        round one ships in round two even when the fresh gradient is
        zero."""
        params = [Tensor(np.zeros(4), requires_grad=True)]
        store = ReplicaGradients(params, 1, topk=1)
        params[0].grad = np.array([1.0, 2.0, 3.0, 4.0])
        store.capture(0)
        store.reduce([0])
        np.testing.assert_array_equal(params[0].grad, [0.0, 0.0, 0.0, 4.0])
        np.testing.assert_array_equal(store._residual[0], [1.0, 2.0, 3.0, 0.0])
        params[0].grad = np.zeros(4)
        store.capture(0)
        store.reduce([0])
        np.testing.assert_array_equal(params[0].grad, [0.0, 0.0, 3.0, 0.0])
        np.testing.assert_array_equal(store._residual[0], [1.0, 2.0, 0.0, 0.0])

    def test_fuzz_matches_error_feedback_oracle(self, backend):
        """Multi-round fuzz vs a plain-numpy error-feedback oracle, with
        random gradient presence and participant subsets, on every sparse
        backend."""
        rng = np.random.default_rng(sum(map(ord, backend)))
        shapes = [(4, 8), (5,), (3, 3)]
        params = self._params(shapes)
        replicas, topk = 3, 4
        store = ReplicaGradients(params, replicas, topk=topk)
        residual = {
            r: [np.zeros(int(np.prod(s))) for s in shapes]
            for r in range(replicas)
        }
        for _ in range(6):
            grads = {}
            participants = sorted(rng.choice(
                replicas, size=rng.integers(1, replicas + 1), replace=False
            ).tolist())
            for r in participants:
                grads[r] = [
                    rng.normal(size=s) if rng.random() > 0.2 else None
                    for s in shapes
                ]
                for p, g in zip(params, grads[r]):
                    p.grad = g
                store.capture(r)
            store.reduce(participants)
            scale = 1.0 / len(participants)
            for index, (p, shape) in enumerate(zip(params, shapes)):
                sources = [r for r in participants
                           if grads[r][index] is not None]
                if not sources:
                    assert p.grad is None
                    continue
                accumulated = np.zeros(int(np.prod(shape)))
                for r in sources:
                    corrected = residual[r][index] + grads[r][index].ravel()
                    k = min(topk, corrected.size)
                    selected = self._oracle_select(corrected, k)
                    accumulated += selected
                    residual[r][index] = corrected - selected
                np.testing.assert_allclose(
                    p.grad, (accumulated * scale).reshape(shape),
                    rtol=0, atol=0,
                )

    def test_topk_covering_every_entry_matches_dense(self):
        """topk >= max dim degenerates to the dense average (== semantics:
        the residual add may flip -0.0 signs, never values)."""
        rng = np.random.default_rng(1)
        sparse_params, dense_params = self._params(), self._params()
        sparse = ReplicaGradients(sparse_params, 2, topk=10**6)
        dense = ReplicaGradients(dense_params, 2)
        for _ in range(3):
            for r in range(2):
                grads = [rng.normal(size=(4, 8)), rng.normal(size=5)]
                for store_params, store in ((sparse_params, sparse),
                                            (dense_params, dense)):
                    for p, g in zip(store_params, grads):
                        p.grad = g.copy()
                    store.capture(r)
            sparse.reduce([0, 1])
            dense.reduce([0, 1])
            for sp, dp in zip(sparse_params, dense_params):
                np.testing.assert_array_equal(sp.grad, dp.grad)
        # Nothing was dropped, so no residual may have accumulated.
        np.testing.assert_array_equal(sparse._residual, 0.0)

    def test_payload_bytes_match_materialised_cbsr(self):
        params = self._params()
        store = ReplicaGradients(params, 2, topk=3)
        rng = np.random.default_rng(2)
        params[0].grad = rng.normal(size=(4, 8))
        params[1].grad = rng.normal(size=5)
        store.capture(0)
        payloads = store.payload_cbsr(0)
        assert len(payloads) == len(params)
        assert store.payload_nbytes == sum(
            c.storage_bytes() for c in payloads
        )
        assert store.dense_nbytes == 8 * (4 * 8 + 5)
        assert store.compression_ratio == pytest.approx(
            store.dense_nbytes / store.payload_nbytes
        )
        # k is clamped per tensor: 3 entries from the matrix, 3 from the
        # 5-vector, each costing 4 data bytes + a uint8 column index.
        assert store.payload_nbytes == (3 + 3) * (4 + 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaGradients(self._params(), 2, topk=0)
        with pytest.raises(ValueError):
            DistributedFlow(PartitionedFlow(n_parts=2), 2, grad_topk=0)
        dense = ReplicaGradients(self._params(), 2)
        with pytest.raises(ValueError, match="top-k"):
            dense.payload_cbsr(0)

    def test_describe_names_the_compression(self):
        flow = DistributedFlow(PartitionedFlow(n_parts=4, seed=0), 3,
                               grad_topk=8)
        assert flow.describe() == "distributed[3,top8]/partitioned/4"

    def test_huge_topk_replays_dense_trajectory(self, graph):
        """With every entry selected the compressed exchange must not
        perturb training at all: same losses, same metrics as the dense
        store at R=2."""
        def run(grad_topk):
            flow = DistributedFlow(
                PartitionedFlow(n_parts=4, boundary_fraction=0.3, seed=0),
                2, grad_topk=grad_topk,
            )
            return make_engine(graph, flow).fit(6, eval_every=2)

        dense, sparse = run(None), run(10**6)
        assert dense.train_losses == sparse.train_losses
        assert dense.batch_losses == sparse.batch_losses
        assert dense.val_metrics == sparse.val_metrics
        assert dense.test_metrics == sparse.test_metrics

    def test_sparse_r2_trains_above_chance(self, graph):
        flow = DistributedFlow(
            PartitionedFlow(n_parts=4, boundary_fraction=0.3, seed=0),
            2, grad_topk=4,
        )
        result = make_engine(graph, flow).fit(
            8, eval_every=4, steps_per_batch=2
        )
        assert result.final_test > 1.0 / 4
        assert np.isfinite(result.train_losses).all()

    def test_report_surfaces_compression(self, graph):
        flow = DistributedFlow(
            PartitionedFlow(n_parts=4, boundary_fraction=0.3, seed=0),
            2, grad_topk=4,
        )
        engine = make_engine(graph, flow)
        engine.fit(3, eval_every=3)
        report = flow.report(graph, hidden=16, n_layers=2,
                             n_params=engine.model.n_parameters(), k=4)
        assert report["grad_topk"] == 4
        assert report["grad_compression_ratio"] >= 4.0
        assert report["comm_volume_reduction_speedup"] == pytest.approx(
            report["grad_compression_ratio"]
        )
        assert report["allreduce_mb_per_epoch"] < \
            report["dense_allreduce_mb_per_epoch"]
        assert report["allreduce_ms_per_epoch"] > 0

    def test_dense_report_shows_no_compression(self, graph):
        flow = DistributedFlow(PartitionedFlow(n_parts=4, seed=0), 2)
        engine = make_engine(graph, flow)
        engine.fit(2, eval_every=2)
        report = flow.report(graph, hidden=16, n_layers=2,
                             n_params=engine.model.n_parameters(), k=4)
        assert report["grad_topk"] == 0
        assert report["grad_compression_ratio"] == pytest.approx(1.0)
        assert report["allreduce_mb_per_epoch"] == pytest.approx(
            report["dense_allreduce_mb_per_epoch"]
        )

    @pytest.mark.slow
    def test_three_seed_accuracy_parity_with_dense(self, graph):
        """Acceptance: top-k accuracy within noise of the dense exchange
        over three model seeds."""
        def final(grad_topk, seed):
            flow = DistributedFlow(
                PartitionedFlow(n_parts=4, boundary_fraction=0.3, seed=0),
                2, grad_topk=grad_topk,
            )
            return make_engine(graph, flow, seed=seed).fit(
                20, eval_every=10
            ).final_test

        dense = np.mean([final(None, seed) for seed in range(3)])
        sparse = np.mean([final(8, seed) for seed in range(3)])
        assert sparse == pytest.approx(dense, abs=0.1)
        assert sparse > 1.0 / 4


class _StaticPlan(BatchPlan):
    __slots__ = ("batch",)

    def __init__(self, batch):
        self.batch = batch

    def build(self):
        return self.batch


class _ScriptedRounds:
    """Minimal rounds-protocol flow replaying a fixed schedule."""

    def __init__(self, rounds, replicas=2):
        self.replicas = replicas
        self._rounds = rounds

    def rounds(self, graph, epoch):
        return [list(r) for r in self._rounds]


class TestEmptyRounds:
    def _unlabelled_twin(self):
        twin = sbm_graph(180, 4, 8.0, intra_fraction=0.7,
                         seed=9).to_undirected()
        attach_classification_task(twin, n_features=8, signal=0.5, seed=9)
        twin.train_mask = np.zeros(twin.n_nodes, dtype=bool)
        return twin

    def test_trailing_empty_round_leaves_no_stale_gradients(self, graph):
        """Regression: a round whose batches are all unlabelled skips its
        optimizer step, and must also clear the previous round's reduced
        gradients — a later consumer reading ``p.grad`` would otherwise
        mistake them for fresh ones."""
        empty = self._unlabelled_twin()
        flow = _ScriptedRounds([
            [_StaticPlan(graph), _StaticPlan(graph)],
            [_StaticPlan(empty), _StaticPlan(empty)],
        ])
        engine = make_engine(graph, flow)
        loss = engine.train_epoch(0)
        assert np.isfinite(loss)
        assert engine.optimizer._t == 1
        for p in engine.optimizer.parameters:
            assert p.grad is None

    def test_interior_empty_round_only_skips_its_own_step(self, graph):
        empty = self._unlabelled_twin()
        flow = _ScriptedRounds([
            [_StaticPlan(graph), _StaticPlan(graph)],
            [_StaticPlan(empty), _StaticPlan(empty)],
            [_StaticPlan(graph), _StaticPlan(graph)],
        ])
        engine = make_engine(graph, flow)
        loss = engine.train_epoch(0)
        assert np.isfinite(loss)
        assert engine.optimizer._t == 2
        for p in engine.optimizer.parameters:
            assert p.grad is not None


class TestTelemetryAndReport:
    def test_note_replica_step_accumulates(self):
        flow = DistributedFlow(PartitionedFlow(n_parts=4, seed=0), 2)
        flow.note_replica_step(0, 0.25, 100)
        flow.note_replica_step(0, 0.25, 100)
        flow.note_replica_step(1, 0.10, 40)
        measured = flow.measured()
        assert measured["replica_edges"] == [200, 40]
        assert measured["straggler_skew"] == pytest.approx(0.5 / 0.3)
        assert 0.0 < measured["load_efficiency"] <= 1.0

    def test_report_includes_model_and_measurement(self, graph):
        flow = DistributedFlow(
            PartitionedFlow(n_parts=4, boundary_fraction=0.3, seed=0), 2
        )
        engine = make_engine(graph, flow)
        engine.fit(3, eval_every=3)
        report = flow.report(graph, hidden=16, n_layers=2,
                             n_params=engine.model.n_parameters(), k=4)
        assert report["replicas"] == 2
        assert report["rounds_per_epoch"] == 2
        assert report["allreduce_mb_per_epoch"] > 0
        assert report["allreduce_ms_per_epoch"] > 0
        assert report["straggler_skew"] >= 1.0
        assert report["predicted_scaling"] > 0
        assert 0.0 < report["modelled_comm_fraction"] < 1.0

    def test_r1_allreduce_is_free(self, graph):
        flow = DistributedFlow(PartitionedFlow(n_parts=2, seed=0), 1)
        report = flow.report(graph, hidden=16, n_layers=2, n_params=1000)
        assert report["allreduce_mb_per_epoch"] == 0.0
        assert report["allreduce_ms_per_epoch"] == 0.0

    def test_ring_allreduce_time_model(self):
        assert ring_allreduce_time(1e6, 1) == 0.0
        two = ring_allreduce_time(1e6, 2)
        four = ring_allreduce_time(1e6, 4)
        assert two > 0
        assert four > two  # more latency-bound steps, more relayed volume
        with pytest.raises(ValueError):
            ring_allreduce_time(-1.0, 2)
        with pytest.raises(ValueError):
            ring_allreduce_time(1e6, 0)

    def test_shard_stats_round_chunk_placement(self):
        stats = PartitionStats(
            n_parts=5,
            nodes_per_part=[10, 20, 30, 40, 50],
            edges_per_part=[1, 2, 3, 4, 5],
            boundary_per_part=[5, 5, 5, 5, 5],
        )
        placed = shard_stats(stats, 2)
        # Replica 0 owns parts 0, 2, 4; replica 1 owns parts 1, 3.
        assert placed.nodes_per_part == [90, 60]
        assert placed.edges_per_part == [9, 6]
        assert placed.boundary_per_part == [15, 10]
        with pytest.raises(ValueError):
            shard_stats(stats, 6)
        with pytest.raises(ValueError):
            shard_stats(stats, 0)

    def test_predicted_scaling_bounded_by_replica_count(self):
        stats = PartitionStats(
            n_parts=4,
            nodes_per_part=[50000] * 4,
            edges_per_part=[2000000] * 4,
            boundary_per_part=[1000] * 4,
        )
        from repro.gpusim import A100

        model = MultiGpuEpochModel(stats, hidden=256, n_layers=3, device=A100)
        scaling = model.predicted_scaling()
        assert 1.0 < scaling <= 4.0
        assert model.serial_epoch() > model.baseline_epoch()
        maxk_scaling = model.predicted_scaling(k=32)
        assert 0.0 < maxk_scaling <= 4.0

    def test_serial_epoch_sums_per_part_selection_on_skew(self):
        """The serial sweep charges each part its own MaxK selection cost;
        charging n_parts x the largest part would overstate
        predicted_scaling on skewed partitions."""
        from repro.gpusim import A100
        from repro.gpusim.kernels.maxk_kernel import maxk_kernel_cost

        skewed = PartitionStats(
            n_parts=4,
            nodes_per_part=[40000, 400, 400, 400],
            edges_per_part=[1600000, 16000, 16000, 16000],
            boundary_per_part=[500] * 4,
        )
        model = MultiGpuEpochModel(skewed, hidden=256, n_layers=1,
                                   device=A100)
        from repro.gpusim.kernels import SparsePattern, spgemm_cost, sspmm_cost

        kernel_sum = sum(
            spgemm_cost(SparsePattern(n, n, e), 256, 32, A100).latency
            + sspmm_cost(SparsePattern(n, n, e), 256, 32, A100).latency
            for n, e in zip(skewed.nodes_per_part, skewed.edges_per_part)
        )
        per_part_selection = sum(
            maxk_kernel_cost(n, 256, 32, A100).latency
            for n in skewed.nodes_per_part
        )
        inflated_selection = 4 * maxk_kernel_cost(40000, 256, 32,
                                                  A100).latency
        assert per_part_selection < inflated_selection
        # n_layers=1: the serial epoch decomposes exactly into the summed
        # kernels plus the *per-part* selection sum.
        assert model.serial_epoch(k=32) == pytest.approx(
            kernel_sum + per_part_selection
        )
        # And the balanced case is unchanged by the fix (sum == P * each).
        balanced = PartitionStats(
            n_parts=2, nodes_per_part=[1000, 1000],
            edges_per_part=[40000, 40000], boundary_per_part=[100, 100],
        )
        balanced_model = MultiGpuEpochModel(balanced, hidden=64,
                                            n_layers=1, device=A100)
        assert balanced_model.serial_epoch(k=8) == pytest.approx(
            2 * MultiGpuEpochModel(
                PartitionStats(n_parts=1, nodes_per_part=[1000],
                               edges_per_part=[40000],
                               boundary_per_part=[100]),
                hidden=64, n_layers=1, device=A100,
            ).serial_epoch(k=8)
        )


class TestMakeFlowDistributed:
    def test_builds_partitioned_inner_by_default(self):
        flow = make_flow("distributed", replicas=3, n_parts=4, seed=1)
        assert isinstance(flow, DistributedFlow)
        assert flow.replicas == 3
        assert flow.inner.name == "partitioned"
        assert flow.inner.n_parts == 4

    def test_builds_sampled_inner(self):
        flow = make_flow("distributed", replicas=2, inner="sampled",
                         sampler="node", importance=True)
        assert flow.inner.name == "sampled"
        assert flow.inner.importance

    def test_rejects_micro_batch_and_prefetch(self):
        with pytest.raises(ValueError, match="does not compose"):
            make_flow("distributed", micro_batch=2, replicas=2)
        with pytest.raises(ValueError, match="does not compose"):
            make_flow("distributed", prefetch=1, replicas=2)

    def test_rejects_unknown_inner(self):
        with pytest.raises(ValueError, match="unknown distributed inner"):
            make_flow("distributed", inner="full")


class TestImportanceSampling:
    def _loss_carrier(self, seed=3):
        """Graph whose feature column 0 carries a per-node 'loss' value."""
        graph = sbm_graph(150, 3, 6.0, seed=seed).to_undirected()
        attach_classification_task(graph, n_features=4, seed=seed)
        rng = np.random.default_rng(seed)
        values = rng.normal(size=graph.n_nodes) ** 2
        features = np.asarray(graph.features, dtype=np.float64).copy()
        features[:, 0] = values
        graph.features = features
        return graph, values

    def test_degree_probabilities_normalised_and_smoothed(self, graph):
        probs = degree_node_probabilities(graph)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs > 0).all()  # +1 smoothing reaches isolated nodes
        uniform = degree_node_probabilities(graph, alpha=0.0)
        np.testing.assert_allclose(uniform, 1.0 / graph.n_nodes)
        with pytest.raises(ValueError):
            degree_node_probabilities(graph, alpha=-1.0)

    def test_importance_subgraph_carries_weights(self, graph):
        sub = node_sampler(graph, 50, seed=0, importance=True)
        assert sub.loss_weights is not None
        assert sub.loss_weights.shape == (sub.n_nodes,)
        assert (sub.loss_weights > 0).all()
        assert node_sampler(graph, 50, seed=0).loss_weights is None

    def test_importance_sampler_deterministic(self, graph):
        a = node_sampler(graph, 50, seed=7, importance=True)
        b = node_sampler(graph, 50, seed=7, importance=True)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.loss_weights, b.loss_weights)

    @pytest.mark.slow
    def test_node_estimator_unbiased(self):
        """Fuzz: the weighted-loss mean over many draws hits the full-graph
        mean (the GraphSAINT normalisation argument, empirically)."""
        graph, values = self._loss_carrier()
        mask = np.asarray(graph.train_mask, dtype=bool)
        target = values[mask].mean()
        estimates = []
        for seed in range(2000):
            sub = node_sampler(graph, 40, seed=seed, importance=True)
            sub_mask = np.asarray(sub.train_mask, dtype=bool)
            carried = np.asarray(sub.features)[sub_mask, 0]
            estimates.append((sub.loss_weights[sub_mask] * carried).sum())
        assert np.mean(estimates) == pytest.approx(target, rel=0.05)

    @pytest.mark.slow
    def test_edge_estimator_unbiased(self):
        graph, values = self._loss_carrier()
        mask = np.asarray(graph.train_mask, dtype=bool)
        target = values[mask].mean()
        estimates = []
        for seed in range(2000):
            sub = edge_sampler(graph, 60, seed=seed, importance=True)
            sub_mask = np.asarray(sub.train_mask, dtype=bool)
            carried = np.asarray(sub.features)[sub_mask, 0]
            estimates.append((sub.loss_weights[sub_mask] * carried).sum())
        assert np.mean(estimates) == pytest.approx(target, rel=0.05)

    def test_weighted_cross_entropy_matches_manual(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        labels = rng.integers(0, 3, size=6)
        weights = rng.random(6) + 0.1
        mask = np.array([True, True, False, True, False, True])
        loss = weighted_cross_entropy(logits, labels, weights, mask)
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(
            np.exp(shifted).sum(axis=1, keepdims=True)
        )
        idx = np.where(mask)[0]
        expected = -(log_probs[idx, labels[idx]] * weights[idx]).sum()
        assert loss.item() == pytest.approx(expected)
        loss.backward()
        assert logits.grad is not None
        # Unmasked rows receive zero gradient.
        np.testing.assert_array_equal(logits.grad[~mask], 0.0)

    def test_sampled_flow_importance_trains(self, graph):
        flow = SampledFlow(sampler="node", batches_per_epoch=2,
                           sample_size=60, seed=0, importance=True)
        assert flow.describe() == "sampled/nodex2+imp"
        result = make_engine(graph, flow).fit(4, eval_every=2)
        assert np.isfinite(result.train_losses).all()

    def test_multilabel_importance_trains(self):
        graph = sbm_graph(160, 4, 6.0, seed=2).to_undirected()
        attach_multilabel_task(graph, n_features=6, n_labels=3, seed=2)
        flow = SampledFlow(sampler="node", batches_per_epoch=2,
                           sample_size=60, seed=0, importance=True)
        config = GNNConfig(
            model_type="sage", in_features=6, hidden=8,
            out_features=int(np.asarray(graph.labels).shape[1]), n_layers=2,
            nonlinearity="maxk", k=2,
        )
        engine = Engine(MaxKGNN(graph, config, seed=0), graph, flow, lr=0.01)
        result = engine.fit(3, eval_every=2)
        assert np.isfinite(result.train_losses).all()

    def test_distributed_over_importance_sampled_flow(self, graph):
        flow = DistributedFlow(
            SampledFlow(sampler="node", batches_per_epoch=4, sample_size=40,
                        seed=0, importance=True),
            2,
        )
        result = make_engine(graph, flow).fit(4, eval_every=2)
        assert np.isfinite(result.train_losses).all()
        assert len(result.batch_losses) == 16

    def test_importance_requires_node_or_edge_sampler(self):
        with pytest.raises(ValueError, match="node or edge"):
            SampledFlow(sampler="walk", importance=True)
        with pytest.raises(ValueError):
            SampledFlow(importance=True, importance_alpha=-0.5)

    def test_edge_alpha_interpolates_to_uniform(self, graph):
        from repro.graphs import degree_edge_probabilities

        uniform = degree_edge_probabilities(graph, alpha=0.0)
        np.testing.assert_allclose(uniform, 1.0 / graph.n_edges)
        weighted = degree_edge_probabilities(graph, alpha=1.0)
        assert weighted.std() > 0
        with pytest.raises(ValueError):
            degree_edge_probabilities(graph, alpha=-1.0)
        # The flow forwards its alpha to the edge sampler: alpha=0 and
        # alpha=1 must draw different batches under the same seed.
        a = edge_sampler(graph, 40, seed=5, importance=True, alpha=0.0)
        b = edge_sampler(graph, 40, seed=5, importance=True, alpha=1.0)
        assert a.n_nodes != b.n_nodes or a.features.shape != b.features.shape \
            or not np.array_equal(a.features, b.features)

    def test_weighted_bce_handles_1d_logits(self):
        from repro.tensor import bce_with_logits

        rng = np.random.default_rng(0)
        z = rng.normal(size=5)
        targets = rng.integers(0, 2, size=5).astype(np.float64)
        weights = rng.random(5) + 0.1
        logits = Tensor(z, requires_grad=True)
        loss = bce_with_logits(logits, targets, weights=weights)
        stable = (np.maximum(z, 0) - z * targets
                  + np.log1p(np.exp(-np.abs(z))))
        assert loss.item() == pytest.approx(float((stable * weights).sum()))
        loss.backward()
        assert logits.grad.shape == z.shape

    def test_micro_batch_merge_normalises_importance_weights(self, graph):
        """Merging K importance batches must not K-fold the weighted loss:
        the merged weights are the concatenation scaled by 1/K, so the
        merged weighted sum is the mean of the member estimators."""
        from repro.training import MicroBatchedFlow

        inner = SampledFlow(sampler="node", batches_per_epoch=2,
                            sample_size=50, pool_size=2, seed=0,
                            importance=True)
        members = list(inner.batches(graph, 0))
        flow = MicroBatchedFlow(
            SampledFlow(sampler="node", batches_per_epoch=2, sample_size=50,
                        pool_size=2, seed=0, importance=True),
            2,
        )
        merged = list(flow.batches(graph, 0))[0]
        assert merged.loss_weights is not None
        expected = np.concatenate(
            [m.loss_weights for m in members]
        ) / len(members)
        np.testing.assert_allclose(merged.loss_weights, expected)
        assert merged.loss_weights.sum() == pytest.approx(
            np.mean([m.loss_weights.sum() for m in members])
        )


class TestCliDistributed:
    def test_train_command_distributed(self, capsys):
        from repro.cli import main

        assert main([
            "train", "--dataset", "Flickr", "--epochs", "3",
            "--flow", "distributed", "--replicas", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "distributed[2]/partitioned/4" in out
        assert "all-reduce" in out
        assert "straggler skew" in out
        assert "predicted" in out

    def test_train_command_distributed_importance(self, capsys):
        from repro.cli import main

        assert main([
            "train", "--dataset", "Flickr", "--epochs", "2",
            "--flow", "distributed", "--replicas", "2",
            "--distributed-inner", "sampled", "--importance",
            "--batches-per-epoch", "4", "--sample-size", "80",
        ]) == 0
        out = capsys.readouterr().out
        assert "distributed[2]/sampled/nodex4+imp" in out

    def test_cli_distributed_rejects_micro_batch_and_prefetch(self):
        """The incompatibility must surface as make_flow's error, not as
        silently dropped flags."""
        from repro.cli import main

        with pytest.raises(ValueError, match="does not compose"):
            main(["train", "--dataset", "Flickr", "--epochs", "2",
                  "--flow", "distributed", "--replicas", "2",
                  "--micro-batch", "4"])
        with pytest.raises(ValueError, match="does not compose"):
            main(["train", "--dataset", "Flickr", "--epochs", "2",
                  "--flow", "distributed", "--replicas", "2",
                  "--prefetch", "2"])

    def test_cli_r1_matches_partitioned_flow(self, capsys):
        """CLI-level acceptance: --flow distributed --replicas 1 reports
        the same final loss as --flow partitioned."""
        from repro.cli import main

        main(["train", "--dataset", "Flickr", "--epochs", "4",
              "--flow", "partitioned", "--n-parts", "3"])
        sequential = capsys.readouterr().out
        main(["train", "--dataset", "Flickr", "--epochs", "4",
              "--flow", "distributed", "--replicas", "1",
              "--n-parts", "3"])
        distributed = capsys.readouterr().out

        def line(output, key):
            return next(l for l in output.splitlines() if l.startswith(key))

        assert line(sequential, "final loss") == line(distributed, "final loss")
        assert line(sequential, "accuracy") == line(distributed, "accuracy")
