"""Tests of the per-table / per-figure experiment modules.

Training-based experiments run with reduced epochs here; the full paper
configurations live in the benchmark harness.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_breakdown,
    fig4_approximator,
    fig8_kernels,
    fig9_system,
    fig10_convergence,
    table2_memory,
    table4_maxk_kernel,
    table5_accuracy,
)
from repro.experiments.common import format_table, scaled_k
from repro.graphs import TRAINING_CONFIGS


class TestCommon:
    def test_scaled_k_proportional(self):
        cfg = TRAINING_CONFIGS["Reddit"]  # hidden 64 vs paper 256
        assert scaled_k(32, cfg) == 8
        assert scaled_k(256, cfg) == cfg.hidden  # clamped

    def test_scaled_k_floor_one(self):
        cfg = TRAINING_CONFIGS["Reddit"]
        assert scaled_k(2, cfg) >= 1

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [(1, 2.5), (10, 0.125)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_empty(self):
        assert format_table(["a"], []) == "a"


class TestFig1:
    def test_spmm_dominates(self):
        result = fig1_breakdown.run()
        assert result.spmm_fraction > 0.8  # paper: 83.6%
        assert result.spmm_fraction < 1.0

    def test_component_keys(self):
        result = fig1_breakdown.run(n_epochs=5)
        assert set(result.seconds) == {"spmm", "linear", "others"}
        assert result.total > 0

    def test_report_mentions_paper_number(self):
        assert "83.6%" in fig1_breakdown.report(fig1_breakdown.run())


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_approximator.run(
            hidden_sizes=[4, 32], n_train=64, epochs=150
        )

    def test_error_decreases_with_width(self, result):
        assert result.maxk_errors[-1] < result.maxk_errors[0]
        assert result.relu_errors[-1] < result.relu_errors[0]

    def test_maxk_comparable_to_relu_at_width(self, result):
        """Paper: similar approximation performance at the largest width."""
        assert result.maxk_errors[-1] < max(10 * result.relu_errors[-1], 2e-3)

    def test_error_curve_accessor(self, result):
        assert result.error_curve("maxk") == result.maxk_errors
        with pytest.raises(ValueError):
            result.error_curve("tanh")


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_kernels.run(
            graphs=["Reddit", "ogbn-proteins", "ddi", "pubmed", "Flickr"],
        )

    def test_all_four_series_present(self, result):
        assert set(result.series) == {
            "spgemm_vs_cusparse",
            "spgemm_vs_gnnadvisor",
            "sspmm_vs_cusparse",
            "sspmm_vs_gnnadvisor",
        }

    def test_speedup_monotone_in_k_for_reddit(self, result):
        values = [
            result.speedup("spgemm_vs_cusparse", "Reddit", k)
            for k in result.k_values
        ]
        assert values == sorted(values, reverse=True)

    def test_high_degree_aggregate_near_paper(self, result):
        """Paper: 4.63/4.15/2.54/1.46 at k=8/16/32/64 (vs cuSPARSE)."""
        means = fig8_kernels.high_degree_mean_speedups(
            result, "spgemm_vs_cusparse"
        )
        paper = {8: 4.63, 16: 4.15, 32: 2.54, 64: 1.46}
        for k, expected in paper.items():
            assert means[k] == pytest.approx(expected, rel=0.35)

    def test_gnnadvisor_series_higher(self, result):
        for graph in result.series["spgemm_vs_cusparse"]:
            for k in result.k_values:
                assert result.speedup(
                    "spgemm_vs_gnnadvisor", graph, k
                ) > result.speedup("spgemm_vs_cusparse", graph, k)

    def test_win_fraction_matches_paper_claim(self, result):
        """Paper: >= 92.2% of cases beat cuSPARSE at k <= 128; 100% vs GNNA."""
        assert result.win_fraction("spgemm_vs_cusparse") > 0.75
        assert result.win_fraction("spgemm_vs_gnnadvisor") > 0.85

    def test_report_contains_summary(self, result):
        assert "high-degree" in fig8_kernels.report(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9_system.run(models=["sage", "gcn"], k_values=[8, 32, 128])

    def test_every_speedup_below_limit(self, result):
        for model, per_dataset in result.speedups.items():
            for dataset, per_baseline in per_dataset.items():
                for baseline, per_k in per_baseline.items():
                    limit = result.limit(model, dataset, baseline)
                    for speedup in per_k.values():
                        assert speedup < limit

    def test_reddit_exceeds_3x_at_low_k(self, result):
        assert result.speedup("sage", "Reddit", "gnnadvisor", 8) > 3.0

    def test_flickr_amdahl_limited_to_small_speedup(self, result):
        assert result.limit("sage", "Flickr", "cusparse") < 1.5

    def test_dataset_ordering_matches_paper(self, result):
        """Reddit and proteins admit larger speedups than Yelp/Flickr."""
        high = result.speedup("sage", "Reddit", "cusparse", 8)
        for low_ds in ("Yelp", "Flickr"):
            assert high > result.speedup("sage", low_ds, "cusparse", 8)

    def test_report_runs(self, result):
        assert "Reddit" in fig9_system.report(result)


@pytest.mark.slow
class TestTable2:
    @pytest.fixture(scope="class")
    def study(self):
        return table2_memory.run()

    def test_traffic_reduction_matches_paper_magnitude(self, study):
        """Paper: ~90% DRAM traffic reduction for both CBSR kernels."""
        spmm = study["spmm"].total_traffic_bytes
        assert study["spgemm"].total_traffic_bytes < 0.25 * spmm
        assert study["sspmm"].total_traffic_bytes < 0.25 * spmm

    def test_hit_rate_orderings(self, study):
        assert study["spmm"].l1_hit_rate < study["spgemm"].l1_hit_rate
        assert study["spmm"].l2_hit_rate < study["spgemm"].l2_hit_rate

    def test_report_contains_all_kernels(self, study):
        text = table2_memory.report(study)
        for kernel in ("spmm", "spgemm", "sspmm"):
            assert kernel in text


class TestTable4:
    def test_ratios(self):
        result = table4_maxk_kernel.run()
        latencies = result.latencies
        assert latencies["spmm"] / latencies["spgemm"] == pytest.approx(2.9, rel=0.2)
        assert result.maxk_over_spgemm < 0.02

    def test_report(self):
        assert "maxk" in table4_maxk_kernel.report().lower()


class TestTable5Small:
    @pytest.fixture(scope="class")
    def result(self):
        # One model, two datasets, reduced epochs: structure + trend check.
        return table5_accuracy.run(
            models=["sage"], datasets=["Flickr", "Reddit"], epochs=40
        )

    def test_rows_complete(self, result):
        assert len(result.rows) == 2 * 3  # baseline + two maxk variants

    def test_baseline_speedup_is_one(self, result):
        row = result.variant("sage", "Flickr", "baseline")
        assert row.speedup_cusparse == 1.0
        assert row.speedup_gnnadvisor > 1.0

    def test_maxk_speedups_exceed_baseline(self, result):
        for dataset in ("Flickr", "Reddit"):
            for paper_k in table5_accuracy.PAPER_K_SELECTIONS[("sage", dataset)]:
                row = result.variant("sage", dataset, "maxk", paper_k)
                assert row.speedup_cusparse > 1.0

    def test_reddit_speedup_larger_than_flickr(self, result):
        reddit = result.variant("sage", "Reddit", "maxk", 16)
        flickr = result.variant("sage", "Flickr", "maxk", 8)
        assert reddit.speedup_cusparse > flickr.speedup_cusparse

    def test_quality_in_valid_range(self, result):
        for row in result.rows:
            assert 0.0 <= row.quality <= 1.0

    def test_report(self, result):
        assert "spd_cusp" in table5_accuracy.report(result)


class TestFig10Small:
    def test_curves_structure(self):
        result = fig10_convergence.run(
            paper_k_values=[32], epochs=20, eval_every=10
        )
        assert set(result.variants()) == {"relu", "maxk_k32"}
        for curve in result.curves.values():
            assert len(curve.train_losses) == 20
            assert curve.final_test > 0.0

    def test_report(self):
        result = fig10_convergence.run(
            paper_k_values=[32], epochs=10, eval_every=5
        )
        assert "relu" in fig10_convergence.report(result)
