"""Unit tests for evaluation metrics (accuracy / micro-F1 / ROC-AUC)."""

import numpy as np
import pytest

from repro.training import accuracy, micro_f1, roc_auc


class TestAccuracy:
    def test_perfect_predictions(self):
        logits = np.array([[5.0, 0.0], [0.0, 5.0], [9.0, 1.0]])
        assert accuracy(logits, np.array([0, 1, 0])) == 1.0

    def test_partial(self):
        logits = np.array([[5.0, 0.0], [5.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_mask(self):
        logits = np.array([[5.0, 0.0], [5.0, 0.0]])
        labels = np.array([0, 1])
        assert accuracy(logits, labels, np.array([True, False])) == 1.0

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.ones((2, 2)), np.zeros(2, dtype=int), np.zeros(2, bool))


class TestMicroF1:
    def test_perfect(self):
        targets = np.array([[1, 0], [0, 1]])
        logits = np.where(targets, 3.0, -3.0)
        assert micro_f1(logits, targets) == 1.0

    def test_known_value(self):
        # TP=1, FP=1, FN=1 -> F1 = 2/(2+1+1) = 0.5
        logits = np.array([[2.0, 2.0, -2.0]])
        targets = np.array([[1, 0, 1]])
        assert micro_f1(logits, targets) == pytest.approx(0.5)

    def test_all_negative_predictions(self):
        logits = -np.ones((3, 4))
        targets = np.zeros((3, 4))
        assert micro_f1(logits, targets) == 0.0

    def test_mask(self):
        logits = np.array([[3.0], [-3.0]])
        targets = np.array([[1.0], [1.0]])
        assert micro_f1(logits, targets, np.array([True, False])) == 1.0


class TestRocAuc:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 1.0

    def test_inverted_scores(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.integers(0, 2, 4000)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_tie_handling(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([0, 1, 0, 1])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_multilabel_averaging(self):
        # Label 0 perfectly ranked, label 1 perfectly inverted -> mean 0.5.
        logits = np.array([[0.1, 0.9], [0.9, 0.1]])
        targets = np.array([[0, 0], [1, 1]])
        assert roc_auc(logits, targets) == pytest.approx(0.5)

    def test_degenerate_labels_skipped(self):
        logits = np.array([[0.2, 0.3], [0.8, 0.9]])
        targets = np.array([[0, 1], [1, 1]])  # column 1 has one class only
        assert roc_auc(logits, targets) == 1.0

    def test_all_degenerate_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones((3, 1)), np.ones((3, 1)))

    def test_matches_scipy_ranking(self):
        """Cross-check the Mann-Whitney formulation against scipy."""
        from scipy import stats

        rng = np.random.default_rng(1)
        scores = rng.normal(size=200)
        labels = rng.integers(0, 2, 200)
        n_pos = labels.sum()
        n_neg = 200 - n_pos
        statistic = stats.mannwhitneyu(
            scores[labels == 1], scores[labels == 0]
        ).statistic
        expected = statistic / (n_pos * n_neg)
        assert roc_auc(scores, labels) == pytest.approx(expected)
