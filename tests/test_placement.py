"""Tests for load-aware replica placement (PR 7 satellite).

``pack_assignment`` replaces :func:`shard_stats`' blind round-robin with
greedy LPT bin-packing driven by measured straggler skew. The contract:
strictly better balance on skewed loads (lower gini, lower makespan, no
worse efficiency), *exact* round-robin degradation on uniform loads (so
existing trajectories and reports are unchanged where no skew exists),
and a :class:`MultiGpuEpochModel` built from the packed
:class:`PartitionStats` keeps its predicted scaling inside ``(0, R]``.
The distributed flow's report wires the packer to the telemetry it
gathers per schedule slot.
"""

import numpy as np
import pytest

from repro.gpusim import (
    A100,
    MultiGpuEpochModel,
    PartitionStats,
    gini,
    pack_assignment,
    pack_stats,
    shard_stats,
)
from repro.graphs import attach_classification_task, sbm_graph
from repro.models import GNNConfig, MaxKGNN
from repro.training import DistributedFlow, Engine, PartitionedFlow


def _skewed_stats():
    # One heavy straggler partition plus light ones: round-robin pairs
    # the heavy part with another load while a bin is left light.
    return PartitionStats(
        n_parts=6,
        nodes_per_part=[400, 100, 100, 100, 100, 100],
        edges_per_part=[9000, 1500, 1400, 1300, 1200, 1100],
        boundary_per_part=[60, 30, 30, 30, 30, 30],
    )


class TestPackAssignment:
    def test_beats_round_robin_on_skewed_loads(self):
        loads = np.array([9000.0, 1500, 1400, 1300, 1200, 1100])
        replicas = 2
        packed = pack_assignment(loads, replicas)
        robin = np.arange(loads.size) % replicas
        packed_bins = np.bincount(packed, weights=loads, minlength=replicas)
        robin_bins = np.bincount(robin, weights=loads, minlength=replicas)
        assert gini(packed_bins) < gini(robin_bins)
        assert packed_bins.max() < robin_bins.max()

    def test_uniform_loads_degrade_to_round_robin_exactly(self):
        for n_parts, replicas in ((6, 2), (8, 4), (5, 3), (4, 4)):
            loads = np.full(n_parts, 7.0)
            packed = pack_assignment(loads, replicas)
            assert np.array_equal(packed, np.arange(n_parts) % replicas), (
                n_parts, replicas,
            )

    def test_every_replica_receives_work(self):
        packed = pack_assignment([5.0, 4.0, 3.0, 2.0], 3)
        assert set(packed.tolist()) == {0, 1, 2}

    def test_validation(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            pack_assignment(np.ones((2, 2)), 1)
        with pytest.raises(ValueError, match="finite"):
            pack_assignment([1.0, np.nan], 1)
        with pytest.raises(ValueError, match="finite"):
            pack_assignment([1.0, -2.0], 1)
        with pytest.raises(ValueError, match="replicas"):
            pack_assignment([1.0, 2.0], 0)
        with pytest.raises(ValueError, match="more replicas"):
            pack_assignment([1.0, 2.0], 3)


class TestPackStats:
    def test_folds_structure_by_assignment(self):
        stats = _skewed_stats()
        packed = pack_stats(stats, 2)
        assert packed.n_parts == 2
        assert sum(packed.nodes_per_part) == sum(stats.nodes_per_part)
        assert sum(packed.edges_per_part) == sum(stats.edges_per_part)
        assert sum(packed.boundary_per_part) == sum(stats.boundary_per_part)
        # The straggler's replica must not also absorb the heavier of the
        # remaining loads — its edge bin stays below round-robin's.
        robin = shard_stats(stats, 2)
        assert max(packed.edges_per_part) <= max(robin.edges_per_part)

    def test_measured_loads_override_edge_proxy(self):
        stats = _skewed_stats()
        # Measured wall-clock says the *last* part is the straggler even
        # though its edge count is smallest.
        loads = [1.0, 1.0, 1.0, 1.0, 1.0, 50.0]
        packed = pack_stats(stats, 2, loads=loads)
        assignment = pack_assignment(loads, 2)
        assert assignment[5] == 0  # heaviest load placed first, bin 0
        assert packed.n_parts == 2
        with pytest.raises(ValueError):
            pack_stats(stats, 2, loads=[1.0])  # wrong length

    def test_predicted_scaling_stays_physical(self):
        stats = _skewed_stats()
        for replicas in (1, 2, 3):
            packed = pack_stats(stats, replicas)
            model = MultiGpuEpochModel(packed, hidden=64, n_layers=2,
                                       device=A100)
            scaling = model.predicted_scaling()
            assert 0.0 < scaling <= replicas + 1e-9, (replicas, scaling)


class TestFlowPlacementReport:
    def _report(self, epochs):
        graph = sbm_graph(180, 4, 8.0, intra_fraction=0.7,
                          seed=9).to_undirected()
        attach_classification_task(graph, n_features=8, signal=0.5, seed=9)
        flow = DistributedFlow(
            PartitionedFlow(n_parts=4, boundary_fraction=0.2, seed=7),
            replicas=2,
        )
        config = GNNConfig(
            model_type="sage", in_features=8, hidden=16, out_features=4,
            n_layers=2, nonlinearity="maxk", k=4, dropout=0.1,
        )
        model = MaxKGNN(graph, config, seed=0)
        engine = Engine(model, graph, flow, lr=0.01)
        for epoch in range(epochs):
            engine.train_epoch(epoch=epoch)
        return flow, flow.report(graph, hidden=16, n_layers=2,
                                 n_params=model.n_parameters())

    def test_placement_block_uses_measured_slot_loads(self):
        flow, report = self._report(epochs=1)
        placement = report["placement"]
        assert placement["strategy"] == "bin-packed"
        # The engine attributes each step to its schedule slot, so after
        # one full epoch every partition has a measured load.
        assert flow.measured_slot_loads(4) is not None
        assert placement["load_source"] == "measured"
        assert len(placement["assignment"]) == 4
        assert set(placement["assignment"]) <= {0, 1}
        # Packing never loses to round-robin on its own objective.
        assert placement["packed_gini"] <= placement["round_robin_gini"] + 1e-9
        assert (placement["packed_makespan"]
                <= placement["round_robin_makespan"] + 1e-9)

    def test_placement_falls_back_to_edge_proxy_untrained(self):
        flow, report = self._report(epochs=0)
        placement = report["placement"]
        assert flow.measured_slot_loads(4) is None
        assert placement["load_source"] == "edges"
        assert placement["packed_gini"] <= placement["round_robin_gini"] + 1e-9
