"""Tests for the MaxK deep-MLP extension (§6) and the CLI driver."""

import numpy as np
import pytest

from repro.cli import ARTIFACTS, build_parser, main
from repro.models import (
    MaxKMLPClassifier,
    mlp_feature_traffic_cut,
    train_mlp_classifier,
)


def blobs(n_per_class=40, n_classes=3, n_features=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(n_classes, n_features))
    inputs = np.concatenate(
        [centers[c] + rng.normal(size=(n_per_class, n_features))
         for c in range(n_classes)]
    )
    labels = np.repeat(np.arange(n_classes), n_per_class)
    return inputs, labels


class TestMaxKMLPClassifier:
    def test_forward_shape(self):
        model = MaxKMLPClassifier(8, 16, 3, n_layers=2, nonlinearity="maxk", k=4)
        logits = model(np.zeros((5, 8)))
        assert logits.shape == (5, 3)

    def test_maxk_mlp_learns_blobs(self):
        inputs, labels = blobs()
        model = MaxKMLPClassifier(8, 32, 3, nonlinearity="maxk", k=8, seed=0)
        accuracy = train_mlp_classifier(model, inputs, labels, epochs=120)
        assert accuracy > 0.9

    def test_maxk_matches_relu_on_blobs(self):
        """§6 extension claim: MaxK regularised sparsity works beyond GNNs."""
        inputs, labels = blobs(seed=1)
        relu_model = MaxKMLPClassifier(8, 32, 3, nonlinearity="relu", seed=0)
        maxk_model = MaxKMLPClassifier(8, 32, 3, nonlinearity="maxk", k=8, seed=0)
        relu_acc = train_mlp_classifier(relu_model, inputs, labels, epochs=120)
        maxk_acc = train_mlp_classifier(maxk_model, inputs, labels, epochs=120)
        assert maxk_acc > relu_acc - 0.1

    def test_hidden_activation_sparsity(self):
        model = MaxKMLPClassifier(8, 16, 3, nonlinearity="maxk", k=4, seed=0)
        from repro.tensor import Tensor, maxk

        x = Tensor(np.random.default_rng(2).normal(size=(10, 8)))
        hidden = maxk(model.hidden_layers[0](x), model.k)
        assert ((hidden.numpy() != 0).sum(axis=1) <= 4).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            MaxKMLPClassifier(8, 16, 3, n_layers=0)
        with pytest.raises(ValueError):
            MaxKMLPClassifier(8, 16, 3, nonlinearity="maxk")  # missing k
        with pytest.raises(ValueError):
            MaxKMLPClassifier(8, 16, 3, nonlinearity="gelu")

    def test_traffic_cut_formula(self):
        # hidden 256 -> k 32 with uint8 index: 1 - 5*32/(4*256) = 84.4%.
        assert mlp_feature_traffic_cut(256, 32, 1024) == pytest.approx(
            1 - (5 * 32) / (4 * 256)
        )

    def test_traffic_cut_monotone_in_k(self):
        cuts = [mlp_feature_traffic_cut(256, k, 64) for k in (8, 32, 128)]
        assert cuts == sorted(cuts, reverse=True)


class TestCLI:
    def test_artifact_registry_complete(self):
        assert set(ARTIFACTS) == {
            "fig1", "fig4", "fig8", "fig9", "fig10",
            "table1", "table2", "table3", "table4", "table5",
            "drift",
        }

    def test_descriptive_tables(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Reddit" in out and "114615891" in out
        assert main(["table3"]) == 0
        assert "384" in capsys.readouterr().out  # Yelp's paper hidden dim

    def test_parser_accepts_every_artifact(self):
        parser = build_parser()
        for name in ARTIFACTS:
            args = parser.parse_args([name])
            assert args.artifact == name

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table5" in out

    def test_fig8_restricted_run(self, capsys):
        assert main(["fig8", "--graphs", "pubmed"]) == 0
        out = capsys.readouterr().out
        assert "pubmed" in out

    def test_table4_run(self, capsys):
        assert main(["table4"]) == 0
        assert "spgemm" in capsys.readouterr().out

    def test_fig9_restricted_run(self, capsys):
        assert main(["fig9", "--models", "sage", "--datasets", "Flickr"]) == 0
        assert "Flickr" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
