"""Unit tests for graph containers, normalisations and generators."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    attach_classification_task,
    attach_multilabel_task,
    chain_of_cliques,
    erdos_renyi_graph,
    normalized_adjacency,
    random_splits,
    rmat_graph,
    sbm_graph,
)


@pytest.fixture
def triangle():
    return Graph(n_nodes=3, src=np.array([0, 1, 2]), dst=np.array([1, 2, 0]))


class TestGraphContainer:
    def test_edge_counts_and_degrees(self, triangle):
        assert triangle.n_edges == 3
        np.testing.assert_array_equal(triangle.in_degrees(), [1, 1, 1])
        np.testing.assert_array_equal(triangle.out_degrees(), [1, 1, 1])
        assert triangle.avg_degree == 1.0

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            Graph(n_nodes=2, src=np.array([0]), dst=np.array([5]))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            Graph(n_nodes=2, src=np.array([0, 1]), dst=np.array([0]))

    def test_to_undirected_doubles_edges(self, triangle):
        undirected = triangle.to_undirected()
        assert undirected.n_edges == 6
        adjacency = undirected.adjacency("none").to_dense()
        np.testing.assert_array_equal(adjacency, adjacency.T)

    def test_degree_skew_zero_for_regular(self):
        ring = Graph(
            n_nodes=6,
            src=np.arange(6),
            dst=(np.arange(6) + 1) % 6,
        )
        assert ring.degree_skew() == pytest.approx(0.0, abs=1e-9)

    def test_summary_fields(self, triangle):
        summary = triangle.summary()
        assert summary["n_nodes"] == 3 and summary["n_edges"] == 3


class TestNormalisations:
    def test_none_is_unit_weights(self, triangle):
        adjacency = normalized_adjacency(triangle, "none")
        assert set(adjacency.data.tolist()) == {1.0}

    def test_sage_rows_sum_to_one(self):
        graph = chain_of_cliques(3, 4)
        adjacency = normalized_adjacency(graph, "sage")
        sums = adjacency.to_dense().sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_gcn_weights_formula(self, triangle):
        """GCN entry (i, j) equals 1 / sqrt(d_i * d_j) with self loops."""
        adjacency = normalized_adjacency(triangle, "gcn").to_dense()
        # Every node has degree 2 after self-loops (one in-edge + loop).
        np.testing.assert_allclose(adjacency[1, 0], 1 / 2)
        np.testing.assert_allclose(adjacency[0, 0], 1 / 2)

    def test_gcn_adds_self_loops(self, triangle):
        adjacency = normalized_adjacency(triangle, "gcn").to_dense()
        assert (np.diag(adjacency) > 0).all()

    def test_gin_alias_of_none(self, triangle):
        a = triangle.adjacency("gin")
        b = triangle.adjacency("none")
        assert a is b  # shared cache entry

    def test_adjacency_cached(self, triangle):
        assert triangle.adjacency("sage") is triangle.adjacency("sage")

    def test_unknown_norm_rejected(self, triangle):
        with pytest.raises(ValueError, match="unknown normalisation"):
            normalized_adjacency(triangle, "bogus")


class TestGenerators:
    def test_rmat_reproducible(self):
        a = rmat_graph(128, 512, seed=9)
        b = rmat_graph(128, 512, seed=9)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)

    def test_rmat_sizes(self):
        graph = rmat_graph(256, 1024, seed=1)
        assert graph.n_nodes == 256
        assert 0 < graph.n_edges <= 1024

    def test_rmat_no_self_loops(self):
        graph = rmat_graph(128, 512, seed=2)
        assert (graph.src != graph.dst).all()

    def test_rmat_skew_exceeds_erdos_renyi(self):
        """Power-law graphs must be skewier than uniform ones."""
        power_law = rmat_graph(512, 4096, seed=3)
        uniform = erdos_renyi_graph(512, 8.0, seed=3)
        assert power_law.degree_skew() > uniform.degree_skew()

    def test_rmat_rejects_bad_params(self):
        with pytest.raises(ValueError):
            rmat_graph(10, 10, a=0.5, b=0.3, c=0.3)

    def test_sbm_has_communities(self):
        graph = sbm_graph(200, 5, 8.0, seed=4)
        assert graph.communities is not None
        assert graph.communities.shape == (200,)
        assert graph.communities.max() < 5

    def test_sbm_homophily(self):
        graph = sbm_graph(400, 4, 10.0, intra_fraction=0.9, seed=5)
        same = (graph.communities[graph.src] == graph.communities[graph.dst]).mean()
        assert same > 0.6  # most edges stay intra-community

    def test_sbm_rejects_bad_intra(self):
        with pytest.raises(ValueError):
            sbm_graph(10, 2, 2.0, intra_fraction=0.0)

    def test_chain_of_cliques_structure(self):
        graph = chain_of_cliques(3, 4)
        assert graph.n_nodes == 12
        # Each clique has size*(size-1) directed edges plus 2 per bridge.
        assert graph.n_edges == 3 * 12 + 2 * 2


class TestTasks:
    def test_random_splits_partition_nodes(self):
        train, val, test = random_splits(100, seed=0)
        combined = train.astype(int) + val.astype(int) + test.astype(int)
        assert (combined == 1).all()

    def test_random_splits_rejects_overfull(self):
        with pytest.raises(ValueError):
            random_splits(10, train_fraction=0.8, val_fraction=0.3)

    def test_classification_task_attaches_everything(self):
        graph = sbm_graph(150, 5, 6.0, seed=6)
        attach_classification_task(graph, n_features=16, seed=6)
        assert graph.features.shape == (150, 16)
        assert graph.labels.shape == (150,)
        assert not graph.multilabel
        assert graph.train_mask.sum() > 0

    def test_classification_needs_communities(self):
        graph = erdos_renyi_graph(50, 4.0)
        with pytest.raises(ValueError, match="communities"):
            attach_classification_task(graph, 8)

    def test_multilabel_task_shapes(self):
        graph = sbm_graph(120, 4, 6.0, seed=7)
        attach_multilabel_task(graph, n_features=16, n_labels=10, seed=7)
        assert graph.labels.shape == (120, 10)
        assert graph.multilabel
        assert set(np.unique(graph.labels)) <= {0.0, 1.0}
