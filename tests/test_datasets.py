"""Unit tests for the Table-1 dataset registry and training datasets."""

import pytest

from repro.graphs import (
    TABLE1_GRAPHS,
    TRAINING_CONFIGS,
    TRAINING_DATASETS,
    kernel_benchmark_names,
    load_kernel_graph,
    load_training_dataset,
)
from repro.graphs.datasets import MAX_SCALED_DEGREE, MAX_SCALED_NODES


class TestRegistry:
    def test_all_24_table1_graphs_registered(self):
        assert len(TABLE1_GRAPHS) == 24

    def test_published_sizes_match_table1_samples(self):
        assert TABLE1_GRAPHS["Reddit"].n_nodes == 232_965
        assert TABLE1_GRAPHS["Reddit"].n_edges == 114_615_891
        assert TABLE1_GRAPHS["ogbn-proteins"].n_edges == 79_122_504
        assert TABLE1_GRAPHS["pubmed"].n_nodes == 19_717

    def test_high_degree_set_matches_paper(self):
        """The paper calls out proteins/ddi/Reddit/ppa/products as avg>50."""
        high = {n for n, s in TABLE1_GRAPHS.items() if s.avg_degree > 50}
        assert high == {
            "ogbn-proteins", "ddi", "Reddit", "ppa", "ogbn-products"
        }

    def test_training_datasets_are_registered(self):
        for name in TRAINING_DATASETS:
            assert name in TABLE1_GRAPHS
            assert name in TRAINING_CONFIGS

    def test_scaled_sizes_bounded(self):
        for spec in TABLE1_GRAPHS.values():
            n_nodes, n_edges = spec.scaled_sizes()
            assert n_nodes <= MAX_SCALED_NODES
            assert n_edges / n_nodes <= MAX_SCALED_DEGREE + 1


class TestKernelGraphs:
    def test_load_kernel_graph_scaled(self):
        graph = load_kernel_graph("pubmed")
        expected_nodes, expected_edges = TABLE1_GRAPHS["pubmed"].scaled_sizes()
        assert graph.n_nodes == expected_nodes
        assert graph.n_edges <= expected_edges

    def test_load_preserves_degree_ordering(self):
        """Scaled Reddit must stay much denser than scaled pubmed."""
        reddit = load_kernel_graph("Reddit")
        pubmed = load_kernel_graph("pubmed")
        assert reddit.avg_degree > 5 * pubmed.avg_degree

    def test_skewed_flag_affects_distribution(self):
        skewed = load_kernel_graph("Reddit")
        regular = load_kernel_graph("Yeast")
        assert skewed.degree_skew() > regular.degree_skew()

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_kernel_graph("not-a-graph")

    def test_names_list_matches_registry(self):
        assert set(kernel_benchmark_names()) == set(TABLE1_GRAPHS)


class TestTrainingDatasets:
    @pytest.mark.parametrize("name", TRAINING_DATASETS)
    def test_load_training_dataset_complete(self, name):
        graph = load_training_dataset(name)
        cfg = TRAINING_CONFIGS[name]
        assert graph.n_nodes == cfg.n_nodes
        assert graph.features.shape == (cfg.n_nodes, cfg.n_features)
        assert graph.labels is not None
        assert graph.multilabel == cfg.multilabel
        assert graph.train_mask.sum() > 0
        assert graph.test_mask.sum() > 0

    def test_multilabel_flags_match_paper_metrics(self):
        """Yelp (F1) and ogbn-proteins (ROC-AUC) are the multilabel tasks."""
        assert TRAINING_CONFIGS["Yelp"].multilabel
        assert TRAINING_CONFIGS["ogbn-proteins"].multilabel
        assert not TRAINING_CONFIGS["Reddit"].multilabel

    def test_paper_table3_settings_recorded(self):
        assert TRAINING_CONFIGS["Yelp"].paper_hidden == 384
        assert TRAINING_CONFIGS["Reddit"].paper_layers == 4
        assert TRAINING_CONFIGS["Flickr"].paper_layers == 3

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_training_dataset("imagenet")

    def test_deterministic_given_seed(self):
        a = load_training_dataset("Flickr", seed=3)
        b = load_training_dataset("Flickr", seed=3)
        assert (a.features == b.features).all()
        assert (a.src == b.src).all()
