"""Unit tests for the full-batch trainer."""

import numpy as np
import pytest

from repro.graphs import attach_classification_task, attach_multilabel_task, sbm_graph
from repro.models import GNNConfig, MaxKGNN
from repro.training import Trainer


def make_graph(multilabel=False, seed=0):
    graph = sbm_graph(120, 4, 6.0, seed=seed).to_undirected()
    if multilabel:
        attach_multilabel_task(graph, n_features=8, n_labels=5, seed=seed)
    else:
        attach_classification_task(graph, n_features=8, seed=seed)
    return graph


def make_model(graph, nonlinearity="relu", k=None, seed=0):
    out_features = (
        graph.labels.shape[1] if graph.multilabel else int(graph.labels.max()) + 1
    )
    config = GNNConfig(
        model_type="sage", in_features=8, hidden=16,
        out_features=out_features, n_layers=2,
        nonlinearity=nonlinearity, k=k, dropout=0.1,
    )
    return MaxKGNN(graph, config, seed=seed)


class TestTrainer:
    def test_loss_decreases(self):
        graph = make_graph()
        trainer = Trainer(make_model(graph), graph, lr=0.01)
        result = trainer.fit(30, eval_every=10)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_learns_better_than_chance(self):
        graph = make_graph()
        trainer = Trainer(make_model(graph), graph, lr=0.01)
        result = trainer.fit(60, eval_every=20)
        assert result.test_at_best_val > 1.5 / 4  # > 1.5x chance on 4 classes

    def test_maxk_model_trains_too(self):
        graph = make_graph()
        trainer = Trainer(make_model(graph, "maxk", k=4), graph, lr=0.01)
        result = trainer.fit(60, eval_every=20)
        assert result.test_at_best_val > 1.5 / 4

    def test_multilabel_uses_f1(self):
        graph = make_graph(multilabel=True)
        trainer = Trainer(make_model(graph), graph, lr=0.01)
        assert trainer.metric == "micro_f1"
        result = trainer.fit(20, eval_every=10)
        assert 0.0 <= result.final_test <= 1.0

    def test_roc_auc_metric_selectable(self):
        graph = make_graph(multilabel=True)
        trainer = Trainer(make_model(graph), graph, metric="roc_auc")
        scores = trainer.evaluate()
        assert 0.0 <= scores["test"] <= 1.0

    def test_accuracy_rejected_for_multilabel(self):
        graph = make_graph(multilabel=True)
        with pytest.raises(ValueError, match="single-label"):
            Trainer(make_model(graph), graph, metric="accuracy")

    def test_unknown_metric_rejected(self):
        graph = make_graph()
        with pytest.raises(ValueError, match="unknown metric"):
            Trainer(make_model(graph), graph, metric="bleu")

    def test_graph_without_labels_rejected(self):
        graph = sbm_graph(50, 3, 4.0, seed=1)
        config = GNNConfig("sage", 8, 16, 3, 2)
        with pytest.raises(ValueError, match="features and labels"):
            Trainer(MaxKGNN(graph, config), graph)

    def test_history_recorded_at_interval(self):
        graph = make_graph()
        trainer = Trainer(make_model(graph), graph)
        result = trainer.fit(21, eval_every=10)
        assert result.epochs_recorded[0] == 0
        assert result.epochs_recorded[-1] == 20
        assert len(result.train_losses) == 21

    def test_best_val_tracks_maximum(self):
        graph = make_graph()
        trainer = Trainer(make_model(graph), graph)
        result = trainer.fit(30, eval_every=10)
        assert result.best_val == max(result.val_metrics)

    def test_rejects_zero_epochs(self):
        graph = make_graph()
        with pytest.raises(ValueError):
            Trainer(make_model(graph), graph).fit(0)
