"""Unit tests for graph partitioning, boundary sampling and subgraph samplers."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    Partition,
    as_generator,
    attach_classification_task,
    bfs_partition,
    bns_sample,
    boundary_nodes,
    edge_sampler,
    induced_subgraph,
    khop_neighborhood,
    node_sampler,
    random_walk_sampler,
    sbm_graph,
)


@pytest.fixture
def graph():
    graph = sbm_graph(240, 6, 8.0, seed=4).to_undirected()
    attach_classification_task(graph, n_features=8, seed=4)
    return graph


class TestPartition:
    def test_every_node_assigned(self, graph):
        partition = bfs_partition(graph, 4, seed=0)
        assert (partition.assignment >= 0).all()
        assert partition.sizes().sum() == graph.n_nodes

    def test_balanced_within_one_capacity(self, graph):
        partition = bfs_partition(graph, 4, seed=0)
        sizes = partition.sizes()
        assert sizes.max() <= -(-graph.n_nodes // 4) + 1

    def test_single_part(self, graph):
        partition = bfs_partition(graph, 1)
        assert partition.edge_cut(graph) == 0

    def test_edge_cut_counts_crossings(self):
        from repro.graphs import Graph

        graph = Graph(n_nodes=4, src=np.array([0, 2]), dst=np.array([1, 3]))
        partition = Partition(assignment=np.array([0, 0, 1, 1]), n_parts=2)
        assert partition.edge_cut(graph) == 0
        crossing = Partition(assignment=np.array([0, 1, 0, 1]), n_parts=2)
        assert crossing.edge_cut(graph) == 2

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            bfs_partition(graph, 0)
        with pytest.raises(ValueError):
            bfs_partition(graph, graph.n_nodes + 1)
        with pytest.raises(ValueError):
            Partition(assignment=np.array([0, 5]), n_parts=2)

    def test_bfs_partition_locality(self, graph):
        """BFS growth should cut fewer edges than random assignment."""
        partition = bfs_partition(graph, 4, seed=0)
        rng = np.random.default_rng(0)
        random_partition = Partition(
            assignment=rng.integers(0, 4, graph.n_nodes), n_parts=4
        )
        assert partition.edge_cut(graph) < random_partition.edge_cut(graph)


class TestBoundary:
    def test_boundary_nodes_belong_to_part(self, graph):
        partition = bfs_partition(graph, 3, seed=1)
        for part in range(3):
            boundary = boundary_nodes(graph, partition, part)
            assert (partition.assignment[boundary] == part).all()

    def test_boundary_nodes_have_crossing_edges(self, graph):
        partition = bfs_partition(graph, 3, seed=1)
        boundary = set(boundary_nodes(graph, partition, 0).tolist())
        assignment = partition.assignment
        for node in list(boundary)[:10]:
            touches = (
                ((graph.src == node) & (assignment[graph.dst] != 0))
                | ((graph.dst == node) & (assignment[graph.src] != 0))
            )
            assert touches.any()


class TestInducedSubgraph:
    def test_subgraph_edges_internal_only(self, graph):
        nodes = np.arange(0, graph.n_nodes, 2)
        sub = induced_subgraph(graph, nodes)
        assert sub.n_nodes == len(nodes)
        assert sub.n_edges <= graph.n_edges
        assert (sub.src < sub.n_nodes).all()

    def test_subgraph_edge_set_matches_dense(self, graph):
        nodes = np.arange(50)
        sub = induced_subgraph(graph, nodes)
        full = graph.adjacency("none").to_dense()
        np.testing.assert_array_equal(
            sub.adjacency("none").to_dense(), full[np.ix_(nodes, nodes)]
        )

    def test_payloads_sliced(self, graph):
        nodes = np.array([5, 10, 20])
        sub = induced_subgraph(graph, nodes)
        np.testing.assert_array_equal(sub.features, graph.features[nodes])
        np.testing.assert_array_equal(sub.labels, graph.labels[nodes])

    def test_out_of_range_rejected(self, graph):
        with pytest.raises(ValueError):
            induced_subgraph(graph, np.array([graph.n_nodes]))


class TestBnsSample:
    def test_contains_all_interior_nodes(self, graph):
        partition = bfs_partition(graph, 3, seed=2)
        sub = bns_sample(graph, partition, 0, boundary_fraction=0.0)
        assert sub.n_nodes == len(partition.members(0))

    def test_boundary_fraction_grows_subgraph(self, graph):
        partition = bfs_partition(graph, 3, seed=2)
        small = bns_sample(graph, partition, 0, boundary_fraction=0.0)
        large = bns_sample(graph, partition, 0, boundary_fraction=1.0)
        assert large.n_nodes >= small.n_nodes

    def test_fraction_validation(self, graph):
        partition = bfs_partition(graph, 2)
        with pytest.raises(ValueError):
            bns_sample(graph, partition, 0, boundary_fraction=1.5)


class TestSamplers:
    def test_node_sampler_size(self, graph):
        sub = node_sampler(graph, 40, seed=0)
        assert sub.n_nodes == 40

    def test_node_sampler_deterministic(self, graph):
        a = node_sampler(graph, 40, seed=5)
        b = node_sampler(graph, 40, seed=5)
        np.testing.assert_array_equal(a.features, b.features)

    def test_edge_sampler_nonempty(self, graph):
        sub = edge_sampler(graph, 60, seed=0)
        assert sub.n_edges > 0
        assert sub.n_nodes <= 120

    def test_random_walk_sampler_connected_ish(self, graph):
        sub = random_walk_sampler(graph, n_roots=5, walk_length=10, seed=0)
        assert 5 <= sub.n_nodes <= 55

    def test_khop_respects_fanout(self, graph):
        seeds = np.array([0, 1])
        one_hop = khop_neighborhood(graph, seeds, n_hops=1, fanout=2)
        # 2 seeds + at most 2 parents each.
        assert one_hop.n_nodes <= 2 + 2 * 2

    def test_khop_zero_hops_is_seeds_only(self, graph):
        seeds = np.array([3, 7, 9])
        sub = khop_neighborhood(graph, seeds, n_hops=0, fanout=4)
        assert sub.n_nodes == 3

    def test_sampler_validation(self, graph):
        with pytest.raises(ValueError):
            node_sampler(graph, 0)
        with pytest.raises(ValueError):
            edge_sampler(graph, 0)
        with pytest.raises(ValueError):
            random_walk_sampler(graph, 0, 5)
        with pytest.raises(ValueError):
            khop_neighborhood(graph, np.array([0]), -1, 2)
        with pytest.raises(ValueError):
            khop_neighborhood(graph, np.array([graph.n_nodes]), 1, 2)


class TestGeneratorSeeds:
    """Samplers accept a streaming np.random.Generator in place of an int."""

    def test_generator_matches_int_seed(self, graph):
        from_int = node_sampler(graph, 40, seed=7)
        from_gen = node_sampler(graph, 40, seed=np.random.default_rng(7))
        np.testing.assert_array_equal(from_int.features, from_gen.features)

    def test_generator_streams_across_calls(self, graph):
        """One generator yields a different batch per call — no reseeding."""
        rng = np.random.default_rng(7)
        first = node_sampler(graph, 40, seed=rng)
        second = node_sampler(graph, 40, seed=rng)
        assert not np.array_equal(first.features, second.features)

    def test_every_sampler_accepts_generator(self, graph):
        rng = np.random.default_rng(0)
        assert node_sampler(graph, 30, seed=rng).n_nodes == 30
        assert edge_sampler(graph, 50, seed=rng).n_edges > 0
        assert random_walk_sampler(graph, 4, 6, seed=rng).n_nodes >= 4
        sub = khop_neighborhood(graph, np.array([0, 1]), 1, 3, rng_seed=rng)
        assert sub.n_nodes >= 2

    def test_as_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng
        assert isinstance(as_generator(5), np.random.Generator)


class TestPayloadPropagation:
    """Labels / features / split masks must survive subgraph induction —
    the engine trains and skips batches based on the sliced masks."""

    @pytest.fixture
    def annotated(self):
        # Identity-coded payloads make the node mapping checkable exactly.
        base = sbm_graph(60, 3, 6.0, seed=2).to_undirected()
        n = base.n_nodes
        return Graph(
            n_nodes=n, src=base.src, dst=base.dst,
            features=np.arange(n, dtype=np.float64)[:, None].repeat(4, axis=1),
            labels=np.arange(n, dtype=np.int64) % 3,
            train_mask=np.arange(n) % 3 == 0,
            val_mask=np.arange(n) % 3 == 1,
            test_mask=np.arange(n) % 3 == 2,
        )

    def test_induced_subgraph_propagates_all_payloads(self, annotated):
        nodes = np.array([3, 7, 12, 30, 59])
        sub = induced_subgraph(annotated, nodes)
        np.testing.assert_array_equal(sub.features[:, 0], nodes)
        np.testing.assert_array_equal(sub.labels, nodes % 3)
        np.testing.assert_array_equal(sub.train_mask, nodes % 3 == 0)
        np.testing.assert_array_equal(sub.val_mask, nodes % 3 == 1)
        np.testing.assert_array_equal(sub.test_mask, nodes % 3 == 2)

    def test_khop_subgraph_propagates_masks(self, annotated):
        seeds = np.array([0, 9, 21])
        sub = khop_neighborhood(annotated, seeds, n_hops=2, fanout=3,
                                rng_seed=0)
        # Features column 0 recovers each node's original id.
        original = sub.features[:, 0].astype(np.int64)
        np.testing.assert_array_equal(sub.labels, original % 3)
        np.testing.assert_array_equal(sub.train_mask, original % 3 == 0)
        np.testing.assert_array_equal(sub.test_mask, original % 3 == 2)
        # The khop seeds were training nodes — they must remain in-mask.
        assert set(seeds).issubset(set(original[sub.train_mask]))

    def test_khop_masks_consistent_with_splits(self, annotated):
        sub = khop_neighborhood(annotated, np.array([0, 3]), n_hops=1,
                                fanout=4, rng_seed=1)
        overlap = (
            (sub.train_mask & sub.val_mask)
            | (sub.train_mask & sub.test_mask)
            | (sub.val_mask & sub.test_mask)
        )
        assert not overlap.any()
        assert (sub.train_mask | sub.val_mask | sub.test_mask).all()

    def test_sampler_subgraphs_keep_mask_dtype_bool(self, graph):
        sub = node_sampler(graph, 50, seed=0)
        assert sub.train_mask.dtype == bool
        assert sub.train_mask.shape == (50,)
