"""Unit tests for Edge-Group warp partitioning (§4.1)."""

import numpy as np
import pytest

from repro.graphs import chain_of_cliques, rmat_graph
from repro.sparse import (
    WARP_SIZE,
    egs_per_warp,
    partition_edge_groups,
)


@pytest.fixture
def adjacency():
    return chain_of_cliques(4, 5).adjacency("none")


class TestEgsPerWarp:
    @pytest.mark.parametrize("dim_k,expected", [(2, 16), (4, 8), (8, 4), (16, 2)])
    def test_case1_packs_multiple_egs(self, dim_k, expected):
        assert egs_per_warp(dim_k) == expected

    @pytest.mark.parametrize("dim_k", [17, 32, 64, 192])
    def test_case2_one_eg_per_warp(self, dim_k):
        assert egs_per_warp(dim_k) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            egs_per_warp(0)


class TestPartition:
    def test_covers_every_nonzero_exactly_once(self, adjacency):
        partition = partition_edge_groups(adjacency, dim_k=4, max_edges_per_group=3)
        covered = np.zeros(adjacency.nnz, dtype=int)
        for group in partition.groups:
            covered[group.start : group.stop] += 1
        assert (covered == 1).all()

    def test_groups_respect_row_boundaries(self, adjacency):
        partition = partition_edge_groups(adjacency, dim_k=4, max_edges_per_group=3)
        for group in partition.groups:
            lo = adjacency.indptr[group.row]
            hi = adjacency.indptr[group.row + 1]
            assert lo <= group.start < group.stop <= hi

    def test_group_size_capped_by_w(self, adjacency):
        w = 3
        partition = partition_edge_groups(adjacency, dim_k=4, max_edges_per_group=w)
        assert all(1 <= g.size <= w for g in partition.groups)

    def test_case1_warp_packing(self, adjacency):
        partition = partition_edge_groups(adjacency, dim_k=8, max_edges_per_group=2)
        assert partition.groups_per_warp == WARP_SIZE // 8
        per_warp_counts = {}
        for group in partition.groups:
            per_warp_counts[group.warp] = per_warp_counts.get(group.warp, 0) + 1
        assert max(per_warp_counts.values()) <= partition.groups_per_warp

    def test_case2_one_group_per_warp(self, adjacency):
        partition = partition_edge_groups(adjacency, dim_k=32, max_edges_per_group=4)
        warps = [g.warp for g in partition.groups]
        assert len(warps) == len(set(warps))

    def test_empty_matrix(self):
        from repro.sparse import coo_to_csr

        empty = coo_to_csr([], [], [], (5, 5))
        partition = partition_edge_groups(empty, dim_k=4)
        assert partition.n_groups == 0
        assert partition.n_warps == 0
        assert partition.balance_ratio() == 1.0

    def test_rejects_bad_w(self, adjacency):
        with pytest.raises(ValueError):
            partition_edge_groups(adjacency, dim_k=4, max_edges_per_group=0)


class TestBalance:
    def test_partitioning_tames_power_law_imbalance(self):
        """Splitting evil rows into EGs bounds the per-warp load."""
        graph = rmat_graph(400, 6000, seed=3)
        adjacency = graph.adjacency("none")
        max_degree = adjacency.row_degrees().max()

        partition = partition_edge_groups(adjacency, dim_k=32, max_edges_per_group=8)
        loads = partition.warp_loads()
        assert loads.max() <= 8  # one EG per warp, at most w edges
        assert loads.max() < max_degree  # the evil row got split

    def test_balance_ratio_close_to_one_for_uniform_rows(self):
        adjacency = chain_of_cliques(8, 4).adjacency("none")
        partition = partition_edge_groups(adjacency, dim_k=32, max_edges_per_group=3)
        assert partition.balance_ratio() <= 1.5
