"""Tests for checkpointing, LR schedulers, early stopping, seed averaging."""

import numpy as np
import pytest

from repro.graphs import attach_classification_task, sbm_graph
from repro.models import GNNConfig, MaxKGNN
from repro.tensor import Adam, Tensor
from repro.training import (
    CosineLR,
    EarlyStopping,
    StepLR,
    load_checkpoint,
    load_state_dict,
    run_seeded,
    save_checkpoint,
    state_dict,
)


@pytest.fixture
def model():
    graph = sbm_graph(60, 3, 5.0, seed=2).to_undirected()
    attach_classification_task(graph, n_features=6, seed=2)
    config = GNNConfig("sage", 6, 8, 3, 2, "maxk", k=2)
    return MaxKGNN(graph, config, seed=0), graph


class TestCheckpoint:
    def test_state_dict_round_trip(self, model):
        net, graph = model
        state = state_dict(net)
        clone = MaxKGNN(graph, net.config, seed=99)
        load_state_dict(clone, state)
        x = graph.features
        np.testing.assert_allclose(
            net.eval()(x).numpy(), clone.eval()(x).numpy()
        )

    def test_file_round_trip(self, model, tmp_path):
        net, graph = model
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(net, path)
        clone = MaxKGNN(graph, net.config, seed=42)
        load_checkpoint(clone, path)
        for original, restored in zip(net.parameters(), clone.parameters()):
            np.testing.assert_array_equal(original.data, restored.data)

    def test_named_keys(self, model):
        net, _ = model
        state = state_dict(net)
        assert "conv0.linear.weight:6x8" in state
        assert "classifier.bias:3" in state

    def test_missing_key_rejected(self, model):
        net, _ = model
        state = state_dict(net)
        state.pop(next(iter(state)))
        with pytest.raises(ValueError, match="missing"):
            load_state_dict(net, state)

    def test_shape_mismatch_rejected(self, model):
        net, _ = model
        state = state_dict(net)
        key = next(iter(state))
        path, _, _ = key.rpartition(":")
        state.pop(key)
        state[f"{path}:1x1"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(net, state)

    def test_legacy_positional_keys_still_load(self, model):
        net, graph = model
        legacy = {
            f"param_{i}": p.data.copy()
            for i, p in enumerate(net.parameters())
        }
        clone = MaxKGNN(graph, net.config, seed=99)
        load_state_dict(clone, legacy)
        for original, restored in zip(net.parameters(), clone.parameters()):
            np.testing.assert_array_equal(original.data, restored.data)


class TestSchedulers:
    def optimizer(self):
        return Adam([Tensor(np.ones(2), requires_grad=True)], lr=0.1)

    def test_step_lr_decays(self):
        optimizer = self.optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            scheduler.step()
            lrs.append(optimizer.lr)
        assert lrs == pytest.approx([0.1, 0.05, 0.05, 0.025])

    def test_cosine_endpoints(self):
        optimizer = self.optimizer()
        scheduler = CosineLR(optimizer, t_max=10, min_lr=0.01)
        assert scheduler.lr_at(0) == pytest.approx(0.1)
        assert scheduler.lr_at(10) == pytest.approx(0.01)
        assert scheduler.lr_at(5) == pytest.approx((0.1 + 0.01) / 2)

    def test_cosine_clamps_past_t_max(self):
        optimizer = self.optimizer()
        scheduler = CosineLR(optimizer, t_max=5)
        assert scheduler.lr_at(50) == pytest.approx(0.0, abs=1e-12)

    def test_monotone_decay(self):
        optimizer = self.optimizer()
        scheduler = CosineLR(optimizer, t_max=20)
        values = [scheduler.lr_at(e) for e in range(21)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        optimizer = self.optimizer()
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=1, gamma=0.0)
        with pytest.raises(ValueError):
            CosineLR(optimizer, t_max=0)
        with pytest.raises(ValueError):
            CosineLR(optimizer, t_max=5, min_lr=1.0)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(0.5)
        assert not stopper.update(0.4)  # stale 1
        assert stopper.update(0.45)  # stale 2 -> stop

    def test_improvement_resets(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5)
        stopper.update(0.4)
        assert not stopper.update(0.6)  # improvement resets
        assert stopper.stale == 0

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(0.5)
        assert stopper.update(0.55)  # within delta -> stale -> stop

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-1.0)


class TestSeededRuns:
    def test_mean_and_std(self):
        result = run_seeded("Flickr", n_seeds=2, epochs=15)
        assert result.n_seeds == 2
        assert 0.0 <= result.mean <= 1.0
        assert result.std >= 0.0
        assert result.metric_name == "accuracy"

    def test_maxk_configuration(self):
        result = run_seeded(
            "Flickr", nonlinearity="maxk", k=8, n_seeds=1, epochs=10
        )
        assert 0.0 <= result.mean <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_seeded("Flickr", n_seeds=0)
