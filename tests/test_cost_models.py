"""Tests of the kernel cost models against the paper's §4.3 algebra.

These lock in the analytic structure: traffic closed forms, reduction
formulas, speedup monotonicity/saturation in k, and the Table-4 relative
latencies.
"""

import numpy as np
import pytest

from repro.gpusim import (
    A100,
    SparsePattern,
    cusparse_spmm_cost,
    elementwise_cost,
    gemm_cost,
    gnnadvisor_spmm_cost,
    maxk_kernel_cost,
    spgemm_cost,
    spgemm_traffic_bytes,
    spgemm_traffic_reduction,
    spmm_traffic_bytes,
    sspmm_cost,
    sspmm_read_bytes,
    sspmm_read_reduction,
    sspmm_write_bytes,
    sspmm_write_reduction,
)
from repro.gpusim.kernels.spgemm import spgemm_request_traffic
from repro.gpusim.kernels.spmm import spmm_request_traffic
from repro.gpusim.kernels.sspmm import sspmm_request_traffic
from repro.graphs import TABLE1_GRAPHS

REDDIT = SparsePattern.from_spec(TABLE1_GRAPHS["Reddit"])
DIM = 256


class TestClosedForms:
    """The §4.3 formulas, verbatim."""

    def test_spmm_feature_traffic(self):
        assert spmm_traffic_bytes(256, 1000) == 4 * 256 * 1000

    def test_spgemm_uint8_traffic(self):
        assert spgemm_traffic_bytes(32, 1000) == 5 * 32 * 1000

    def test_spgemm_int32_traffic(self):
        assert spgemm_traffic_bytes(32, 1000, uint8_index=False) == 8 * 32 * 1000

    def test_sspmm_read_formula(self):
        assert sspmm_read_bytes(256, 32, 100, 1000) == 4 * 100 * 256 + 5 * 32 * 1000

    def test_sspmm_write_formula(self):
        assert sspmm_write_bytes(32, 1000) == 4 * 32 * 1000

    def test_forward_reduction_formula(self):
        assert spgemm_traffic_reduction(256, 16, 1000) == (4 * 256 - 5 * 16) * 1000

    def test_reduction_is_fetch_difference(self):
        nnz = 12345
        assert spgemm_traffic_reduction(DIM, 16, nnz) == (
            spmm_traffic_bytes(DIM, nnz) - spgemm_traffic_bytes(16, nnz)
        )

    def test_backward_reductions(self):
        nnz = 999
        assert sspmm_read_reduction(DIM, 16, nnz) == (4 * DIM - 5 * 16) * nnz
        assert sspmm_write_reduction(DIM, 16, nnz) == 4 * (DIM - 16) * nnz

    def test_paper_reddit_headline_reduction(self):
        """Reddit, dim 256 -> k 16: ~90.6% forward traffic reduction."""
        nnz = REDDIT.nnz
        reduction = spgemm_traffic_reduction(DIM, 16, nnz)
        assert reduction / spmm_traffic_bytes(DIM, nnz) == pytest.approx(
            0.922, abs=0.01
        )

    def test_kernel_traffic_contains_closed_form_fetch(self):
        traffic = spgemm_request_traffic(REDDIT, DIM, 32, A100)
        assert traffic.categories["cbsr_fetch"] == spgemm_traffic_bytes(
            32, REDDIT.nnz
        )
        spmm = spmm_request_traffic(REDDIT, DIM, A100)
        assert spmm.categories["feature_fetch"] == spmm_traffic_bytes(
            DIM, REDDIT.nnz
        )

    def test_sspmm_kernel_traffic_split(self):
        traffic = sspmm_request_traffic(REDDIT, DIM, 32, A100)
        combined = (
            traffic.categories["dense_row_unique"]
            + traffic.categories["sparse_fetch"]
        )
        assert combined == sspmm_read_bytes(DIM, 32, REDDIT.n_rows, REDDIT.nnz)
        assert traffic.categories["sp_data_write"] == sspmm_write_bytes(
            32, REDDIT.nnz
        )


class TestSpeedupShape:
    """Fig.-8 qualitative structure."""

    @pytest.fixture
    def spmm_latency(self):
        return cusparse_spmm_cost(REDDIT, DIM, A100).latency

    def test_speedup_monotone_decreasing_in_k(self, spmm_latency):
        speedups = [
            spmm_latency / spgemm_cost(REDDIT, DIM, k, A100).latency
            for k in (2, 4, 8, 16, 32, 64, 96, 128, 192)
        ]
        assert speedups == sorted(speedups, reverse=True)

    def test_speedup_saturates_at_low_k(self, spmm_latency):
        """Halving k below 8 must gain far less than 2x (accumulation floor)."""
        s2 = spmm_latency / spgemm_cost(REDDIT, DIM, 2, A100).latency
        s4 = spmm_latency / spgemm_cost(REDDIT, DIM, 4, A100).latency
        s64 = spmm_latency / spgemm_cost(REDDIT, DIM, 64, A100).latency
        s128 = spmm_latency / spgemm_cost(REDDIT, DIM, 128, A100).latency
        assert s2 / s4 < 1.25  # saturated regime
        assert (s64 / s128) > (s2 / s4)  # unsaturated regime gains more

    def test_high_degree_graphs_speed_up_more(self):
        """Reddit (deg 492) must out-speed pubmed (deg 5) at the same k."""
        pubmed = SparsePattern.from_spec(TABLE1_GRAPHS["pubmed"])
        def speedup(pattern):
            spmm = cusparse_spmm_cost(pattern, DIM, A100).latency
            return spmm / spgemm_cost(pattern, DIM, 16, A100).latency
        assert speedup(REDDIT) > speedup(pubmed)

    def test_sspmm_faster_than_spgemm_at_low_k(self):
        """Paper: backward SSpMM achieves better speedup than forward at k<=16."""
        forward = spgemm_cost(REDDIT, DIM, 8, A100).latency
        backward = sspmm_cost(REDDIT, DIM, 8, A100).latency
        assert backward < forward

    def test_gnnadvisor_slower_than_cusparse(self):
        for name in ("Reddit", "Flickr", "ogbn-products"):
            pattern = SparsePattern.from_spec(TABLE1_GRAPHS[name])
            assert (
                gnnadvisor_spmm_cost(pattern, DIM, A100).latency
                > cusparse_spmm_cost(pattern, DIM, A100).latency
            )

    def test_gnnadvisor_slowdown_range_matches_table5(self):
        """Measured 1.05x (products) to 1.37x (proteins)."""
        for name, low, high in [
            ("ogbn-proteins", 1.30, 1.40),
            ("Reddit", 1.25, 1.37),
            ("ogbn-products", 1.05, 1.12),
            ("Flickr", 1.05, 1.08),
        ]:
            pattern = SparsePattern.from_spec(TABLE1_GRAPHS[name])
            ratio = (
                gnnadvisor_spmm_cost(pattern, DIM, A100).latency
                / cusparse_spmm_cost(pattern, DIM, A100).latency
            )
            assert low <= ratio <= high, (name, ratio)


class TestTable4Calibration:
    def test_spmm_to_spgemm_ratio(self):
        """Paper Table 4: 44.98 / 15.49 = 2.9x."""
        spmm = cusparse_spmm_cost(REDDIT, DIM, A100).latency
        spgemm = spgemm_cost(REDDIT, DIM, 32, A100).latency
        assert spmm / spgemm == pytest.approx(2.9, rel=0.15)

    def test_spmm_to_sspmm_ratio(self):
        """Paper Table 4: 44.98 / 15.07 = 2.98x."""
        spmm = cusparse_spmm_cost(REDDIT, DIM, A100).latency
        sspmm = sspmm_cost(REDDIT, DIM, 32, A100).latency
        assert spmm / sspmm == pytest.approx(2.98, rel=0.15)

    def test_maxk_kernel_under_two_percent_of_spgemm(self):
        maxk = maxk_kernel_cost(REDDIT.n_rows, DIM, 32, A100).latency
        spgemm = spgemm_cost(REDDIT, DIM, 32, A100).latency
        assert maxk / spgemm < 0.02

    def test_absolute_spmm_latency_near_paper(self):
        """The L2-service boost is calibrated against Table 4's 44.98 ms."""
        spmm = cusparse_spmm_cost(REDDIT, DIM, A100).latency
        assert spmm == pytest.approx(44.98e-3, rel=0.1)


class TestValidation:
    def test_k_bounds_enforced(self):
        with pytest.raises(ValueError):
            spgemm_cost(REDDIT, DIM, 0, A100)
        with pytest.raises(ValueError):
            sspmm_cost(REDDIT, DIM, DIM + 1, A100)
        with pytest.raises(ValueError):
            maxk_kernel_cost(10, DIM, DIM + 1, A100)

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            SparsePattern(0, 5, 3)
        with pytest.raises(ValueError):
            SparsePattern(5, 5, -1)

    def test_gemm_cost_positive_and_compute_bound_for_big_gemm(self):
        cost = gemm_cost(10_000, 4096, 4096, A100)
        compute = 2.0 * 10_000 * 4096 * 4096 / A100.peak_fp32_flops
        assert cost.latency == pytest.approx(compute + A100.launch_overhead, rel=1e-6)

    def test_gemm_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            gemm_cost(0, 4, 4, A100)

    def test_elementwise_scales_with_passes(self):
        one = elementwise_cost(1_000_000, A100, n_passes=1).latency
        four = elementwise_cost(1_000_000, A100, n_passes=4).latency
        assert four == pytest.approx(4 * one, rel=0.05)

    def test_device_validation(self):
        with pytest.raises(ValueError):
            A100.memory_time(-1.0, 0.5)
        with pytest.raises(ValueError):
            A100.memory_time(1.0, 0.0)
        with pytest.raises(ValueError):
            A100.compute_time(-1.0)
        with pytest.raises(ValueError):
            A100.gnnadvisor_slowdown(-1.0)
