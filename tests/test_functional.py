"""Unit tests for differentiable GNN operators (relu/maxk/spmm/losses)."""

import numpy as np
import pytest

from repro.graphs import chain_of_cliques
from repro.sparse import ops
from repro.tensor import (
    Tensor,
    bce_with_logits,
    cross_entropy,
    dropout,
    log_softmax,
    maxk,
    relu,
    segment_softmax,
    sigmoid,
    spmm_agg,
)
from repro.tensor.functional import spgemm_agg
from tests.test_tensor import check_gradient, finite_difference


class TestActivations:
    def test_relu_values(self):
        x = Tensor(np.array([[-1.0, 2.0, 0.0]]))
        np.testing.assert_allclose(relu(x).numpy(), [[0.0, 2.0, 0.0]])

    def test_relu_gradient(self):
        check_gradient(lambda x: (relu(x) * 3.0).sum(), (4, 5), seed=1)

    def test_maxk_keeps_k_per_row(self):
        x = Tensor(np.random.default_rng(0).normal(size=(6, 10)))
        out = maxk(x, 3)
        assert ((out.numpy() != 0).sum(axis=1) <= 3).all()

    def test_maxk_gradient_matches_mask_routing(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5, 8))
        tensor = Tensor(x.copy(), requires_grad=True)
        weights = rng.normal(size=(5, 8))
        loss = (maxk(tensor, 3) * Tensor(weights)).sum()
        loss.backward()
        from repro.core import maxk_forward

        _, mask = maxk_forward(x, 3)
        np.testing.assert_allclose(tensor.grad, np.where(mask, weights, 0.0))

    def test_maxk_full_k_equals_identity_grad(self):
        check_gradient(lambda x: (maxk(x, 6) ** 2).sum(), (3, 6), seed=3)

    def test_sigmoid_values_and_gradient(self):
        np.testing.assert_allclose(
            sigmoid(Tensor(np.zeros((1, 1)))).numpy(), [[0.5]]
        )
        check_gradient(lambda x: sigmoid(x).sum(), (4, 3), seed=4)


class TestSpmmAgg:
    def test_forward_matches_dense(self):
        graph = chain_of_cliques(3, 4)
        adjacency = graph.adjacency("sage")
        x = np.random.default_rng(5).normal(size=(graph.n_nodes, 6))
        out = spmm_agg(adjacency, Tensor(x)).numpy()
        np.testing.assert_allclose(out, adjacency.to_dense() @ x)

    def test_backward_is_transpose_spmm(self):
        graph = chain_of_cliques(2, 5)
        adjacency = graph.adjacency("gcn")
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(size=(graph.n_nodes, 4)), requires_grad=True)
        weights = rng.normal(size=(graph.n_nodes, 4))
        (spmm_agg(adjacency, x) * Tensor(weights)).sum().backward()
        expected = adjacency.to_dense().T @ weights
        np.testing.assert_allclose(x.grad, expected)

    def test_gradient_finite_difference(self):
        graph = chain_of_cliques(2, 3)
        adjacency = graph.adjacency("sage")
        check_gradient(
            lambda x: (spmm_agg(adjacency, x) ** 2).sum(),
            (graph.n_nodes, 3),
            seed=7,
        )

    def test_explicit_transpose_accepted(self):
        graph = chain_of_cliques(2, 3)
        adjacency = graph.adjacency("none")
        x = Tensor(np.ones((graph.n_nodes, 2)), requires_grad=True)
        out = spmm_agg(adjacency, x, adjacency.transpose())
        assert out.shape == (graph.n_nodes, 2)


class TestGradchecksAcrossBackends:
    """Finite-difference gradchecks for the ops riding the sparse backend.

    Every autograd operator whose forward/backward closures route through
    :mod:`repro.sparse.ops` — SpMM aggregation, the CBSR SpGEMM/SSpMM
    pair, MaxK selection and the segment softmax — is checked against a
    central-difference gradient under each registered backend.
    """

    @pytest.fixture(params=ops.available_backends())
    def backend(self, request):
        with ops.use_backend(request.param):
            yield request.param

    def test_spmm_agg_gradcheck(self, backend):
        graph = chain_of_cliques(2, 4)
        adjacency = graph.adjacency("gcn")
        check_gradient(
            lambda x: (spmm_agg(adjacency, x) ** 2).sum(),
            (graph.n_nodes, 3),
            seed=31,
        )

    def test_spgemm_agg_gradcheck(self, backend):
        """The literal CBSR SpGEMM forward / SSpMM backward dataflow.

        MaxK's top-k selection is only piecewise-differentiable, so the
        input is spread out enough that the k-th/(k+1)-th gap never
        straddles the finite-difference step.
        """
        graph = chain_of_cliques(2, 3)
        adjacency = graph.adjacency("sage")
        rng = np.random.default_rng(32)
        base = rng.permuted(
            np.arange(graph.n_nodes * 6, dtype=np.float64).reshape(
                graph.n_nodes, 6
            ),
            axis=1,
        )
        tensor = Tensor(base.copy(), requires_grad=True)
        loss = (spgemm_agg(adjacency, tensor, k=3) ** 2).sum()
        loss.backward()
        numeric = finite_difference(
            lambda arr: (spgemm_agg(adjacency, Tensor(arr), k=3) ** 2)
            .sum()
            .item(),
            base.copy(),
        )
        np.testing.assert_allclose(tensor.grad, numeric, rtol=1e-5, atol=1e-7)

    def test_maxk_gradcheck(self, backend):
        rng = np.random.default_rng(33)
        base = rng.permuted(
            np.arange(24, dtype=np.float64).reshape(4, 6), axis=1
        )
        tensor = Tensor(base.copy(), requires_grad=True)
        (maxk(tensor, 2) ** 2).sum().backward()
        numeric = finite_difference(
            lambda arr: (maxk(Tensor(arr), 2) ** 2).sum().item(), base.copy()
        )
        np.testing.assert_allclose(tensor.grad, numeric, rtol=1e-5, atol=1e-7)

    def test_segment_softmax_gradcheck(self, backend):
        ids = np.array([0, 0, 1, 2, 2, 2, 4, 4])
        weights = np.random.default_rng(34).normal(size=len(ids))
        check_gradient(
            lambda x: (segment_softmax(x, ids, 5) * Tensor(weights)).sum(),
            (len(ids),),
            seed=35,
            rtol=1e-4,
            atol=1e-7,
        )

    def test_spgemm_agg_matches_spmm_maxk_composition(self, backend):
        graph = chain_of_cliques(3, 3)
        adjacency = graph.adjacency("sage")
        rng = np.random.default_rng(36)
        x = rng.normal(size=(graph.n_nodes, 8))
        via_cbsr = spgemm_agg(adjacency, Tensor(x), k=4).numpy()
        composed = spmm_agg(adjacency, maxk(Tensor(x), 4)).numpy()
        np.testing.assert_allclose(via_cbsr, composed, rtol=1e-10, atol=1e-12)


class TestDropout:
    def test_identity_when_not_training(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_identity_when_p_zero(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((4, 4)))
        assert dropout(x, 0.0, training=True, rng=rng) is x

    def test_inverted_scaling_preserves_expectation(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((2000, 10)))
        out = dropout(x, 0.3, training=True, rng=rng).numpy()
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        surviving = out[out != 0]
        np.testing.assert_allclose(surviving, 1.0 / 0.7)

    def test_gradient_routes_through_kept_units(self):
        rng = np.random.default_rng(2)
        x = Tensor(np.ones((50, 4)), requires_grad=True)
        out = dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        kept = out.numpy() != 0
        np.testing.assert_allclose(x.grad[kept], 2.0)
        np.testing.assert_allclose(x.grad[~kept], 0.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(2)), 1.0, True, np.random.default_rng(0))


class TestLosses:
    def test_log_softmax_rows_normalise(self):
        x = Tensor(np.random.default_rng(3).normal(size=(6, 5)))
        probs = np.exp(log_softmax(x).numpy())
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_log_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 0.0, -1000.0]]))
        out = log_softmax(x).numpy()
        assert np.isfinite(out).all()

    def test_log_softmax_gradient(self):
        check_gradient(lambda x: (log_softmax(x) ** 2).sum(), (4, 3), seed=8)

    def test_cross_entropy_matches_manual(self):
        rng = np.random.default_rng(9)
        logits = rng.normal(size=(8, 4))
        labels = rng.integers(0, 4, size=8)
        loss = cross_entropy(Tensor(logits), labels).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(8), labels].mean()
        assert loss == pytest.approx(expected)

    def test_cross_entropy_mask(self):
        rng = np.random.default_rng(10)
        logits = rng.normal(size=(6, 3))
        labels = rng.integers(0, 3, size=6)
        mask = np.array([True, False, True, False, False, False])
        masked = cross_entropy(Tensor(logits), labels, mask).item()
        full_on_subset = cross_entropy(
            Tensor(logits[mask]), labels[mask]
        ).item()
        assert masked == pytest.approx(full_on_subset)

    def test_cross_entropy_gradient(self):
        labels = np.array([0, 2, 1, 1])
        check_gradient(
            lambda x: cross_entropy(x, labels), (4, 3), seed=11
        )

    def test_bce_matches_manual(self):
        rng = np.random.default_rng(12)
        logits = rng.normal(size=(5, 4))
        targets = (rng.random((5, 4)) > 0.5).astype(float)
        loss = bce_with_logits(Tensor(logits), targets).item()
        probs = 1 / (1 + np.exp(-logits))
        expected = -(
            targets * np.log(probs) + (1 - targets) * np.log(1 - probs)
        ).mean()
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_bce_stable_for_extreme_logits(self):
        logits = Tensor(np.array([[500.0, -500.0]]))
        targets = np.array([[1.0, 0.0]])
        assert bce_with_logits(logits, targets).item() == pytest.approx(0.0, abs=1e-9)

    def test_bce_gradient(self):
        targets = (np.random.default_rng(13).random((4, 3)) > 0.5).astype(float)
        check_gradient(
            lambda x: bce_with_logits(x, targets), (4, 3), seed=13, rtol=1e-4
        )

    def test_bce_mask(self):
        rng = np.random.default_rng(14)
        logits = rng.normal(size=(6, 2))
        targets = (rng.random((6, 2)) > 0.5).astype(float)
        mask = np.array([True, True, False, False, True, False])
        masked = bce_with_logits(Tensor(logits), targets, mask).item()
        subset = bce_with_logits(Tensor(logits[mask]), targets[mask]).item()
        assert masked == pytest.approx(subset)
