"""Unit tests for the Amdahl's-law utilities."""

import pytest

from repro.core import AmdahlBreakdown, speedup, speedup_limit


class TestSpeedupLimit:
    def test_paper_reddit_example(self):
        # p_SpMM = 0.8188 gives the 5.52x limit reported for Reddit/SAGE.
        assert speedup_limit(1 - 1 / 5.52) == pytest.approx(5.52)

    def test_zero_fraction_no_speedup(self):
        assert speedup_limit(0.0) == 1.0

    def test_full_fraction_unbounded(self):
        assert speedup_limit(1.0) == float("inf")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            speedup_limit(1.5)
        with pytest.raises(ValueError):
            speedup_limit(-0.1)


class TestSpeedup:
    def test_infinite_kernel_speedup_hits_limit(self):
        p = 0.8
        assert speedup(p, 1e12) == pytest.approx(speedup_limit(p), rel=1e-6)

    def test_unit_kernel_speedup_is_identity(self):
        assert speedup(0.7, 1.0) == pytest.approx(1.0)

    def test_monotone_in_kernel_speedup(self):
        values = [speedup(0.8, s) for s in (1, 2, 4, 8, 100)]
        assert values == sorted(values)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            speedup(0.5, 0.0)
        with pytest.raises(ValueError):
            speedup(2.0, 2.0)


class TestBreakdown:
    def test_p_spmm_and_limit(self):
        breakdown = AmdahlBreakdown(spmm_time=8.0, other_time=2.0)
        assert breakdown.p_spmm == pytest.approx(0.8)
        assert breakdown.limit == pytest.approx(5.0)

    def test_speedup_with_free_spmm_reaches_limit(self):
        breakdown = AmdahlBreakdown(spmm_time=8.0, other_time=2.0)
        assert breakdown.speedup_with(0.0) == pytest.approx(breakdown.limit)

    def test_speedup_with_halved_spmm(self):
        breakdown = AmdahlBreakdown(spmm_time=8.0, other_time=2.0)
        assert breakdown.speedup_with(4.0) == pytest.approx(10.0 / 6.0)

    def test_measured_speedup_never_exceeds_limit(self):
        breakdown = AmdahlBreakdown(spmm_time=5.0, other_time=5.0)
        for new_time in (0.0, 0.1, 1.0, 5.0):
            assert breakdown.speedup_with(new_time) <= breakdown.limit + 1e-12

    def test_rejects_invalid_times(self):
        with pytest.raises(ValueError):
            AmdahlBreakdown(spmm_time=-1.0, other_time=1.0)
        with pytest.raises(ValueError):
            AmdahlBreakdown(spmm_time=0.0, other_time=0.0)
        breakdown = AmdahlBreakdown(1.0, 1.0)
        with pytest.raises(ValueError):
            breakdown.speedup_with(-1.0)
