"""Tests for the GNNAdvisor neighbour-grouping substrate."""

import numpy as np
import pytest

from repro.gpusim.kernels.gnnadvisor import (
    gnnadvisor_address_stream,
    gnnadvisor_execute,
    neighbor_groups,
)
from repro.graphs import rmat_graph


@pytest.fixture(scope="module")
def adjacency():
    return rmat_graph(120, 1400, seed=8).adjacency("sage")


class TestNeighborGroups:
    def test_cover_all_nonzeros(self, adjacency):
        groups = neighbor_groups(adjacency, 8)
        assert sum(g.size for g in groups) == adjacency.nnz

    def test_group_size_capped(self, adjacency):
        groups = neighbor_groups(adjacency, 8)
        assert all(1 <= g.size <= 8 for g in groups)

    def test_groups_respect_rows(self, adjacency):
        for group in neighbor_groups(adjacency, 4):
            assert adjacency.indptr[group.row] <= group.start
            assert group.stop <= adjacency.indptr[group.row + 1]

    def test_validation(self, adjacency):
        with pytest.raises(ValueError):
            neighbor_groups(adjacency, 0)


class TestExecution:
    def test_matches_dense(self, adjacency):
        x = np.random.default_rng(0).normal(size=(adjacency.n_cols, 12))
        out = gnnadvisor_execute(adjacency, x, group_size=8)
        np.testing.assert_allclose(out, adjacency.to_dense() @ x)

    def test_group_size_invariance(self, adjacency):
        x = np.random.default_rng(1).normal(size=(adjacency.n_cols, 6))
        a = gnnadvisor_execute(adjacency, x, group_size=2)
        b = gnnadvisor_execute(adjacency, x, group_size=64)
        np.testing.assert_allclose(a, b)

    def test_dimension_check(self, adjacency):
        with pytest.raises(ValueError):
            gnnadvisor_execute(adjacency, np.ones((3, 3)))


class TestAddressStream:
    def test_stream_length_close_to_spmm(self, adjacency):
        """Grouping reorders accesses but fetch volume matches row-wise SpMM
        up to the extra per-group output flushes."""
        from repro.gpusim.kernels import spmm_address_stream

        grouped = gnnadvisor_address_stream(adjacency, 256, group_size=16)
        row_wise = spmm_address_stream(adjacency, 256)
        assert len(grouped) >= len(row_wise)
        assert len(grouped) < 1.5 * len(row_wise)

    def test_empty_graph(self):
        from repro.sparse import coo_to_csr

        empty = coo_to_csr([], [], [], (3, 3))
        assert len(gnnadvisor_address_stream(empty, 128)) == 0

    def test_line_ids_non_negative(self, adjacency):
        stream = gnnadvisor_address_stream(adjacency, 128)
        assert stream.min() >= 0
