"""Tests for the benchmark trend checker gating the perf-smoke CI job."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_trend",
    Path(__file__).parent.parent / "benchmarks" / "check_trend.py",
)
check_trend = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_trend)


def _verdicts(baseline, current, tolerance=0.2, include_times=False):
    return {
        path: ok
        for path, _, _, _, ok in check_trend.compare_file(
            baseline, current, tolerance, include_times
        )
    }


class TestCompareFile:
    def test_speedup_regression_beyond_tolerance_fails(self):
        verdicts = _verdicts({"a": {"speedup": 2.0}}, {"a": {"speedup": 1.5}})
        assert verdicts == {"a.speedup": False}

    def test_speedup_within_tolerance_passes(self):
        verdicts = _verdicts({"a": {"speedup": 2.0}}, {"a": {"speedup": 1.7}})
        assert verdicts == {"a.speedup": True}

    def test_improvement_always_passes(self):
        verdicts = _verdicts({"a": {"speedup": 2.0}}, {"a": {"speedup": 9.0}})
        assert verdicts == {"a.speedup": True}

    def test_scaling_and_efficiency_are_gated_ratios(self):
        baseline = {"predicted_scaling": 1.0, "load_efficiency": 0.99}
        current = {"predicted_scaling": 0.5, "load_efficiency": 0.99}
        verdicts = _verdicts(baseline, current)
        assert verdicts["predicted_scaling"] is False
        assert verdicts["load_efficiency"] is True

    def test_boolean_flags_must_not_flip_false(self):
        verdicts = _verdicts(
            {"x": {"identical": True, "finite": True}},
            {"x": {"identical": False, "finite": True}},
        )
        assert verdicts == {"x.identical": False, "x.finite": True}

    def test_zero_stale_is_a_gated_boolean(self):
        # The mutation benchmark's staleness claim (every served logit
        # matches its admission-time generation) gates like the bitwise
        # identity flags.
        verdicts = _verdicts(
            {"mix": {"zero_stale": True}},
            {"mix": {"zero_stale": False}},
        )
        assert verdicts == {"mix.zero_stale": False}

    def test_deadline_met_is_a_gated_boolean(self):
        # The serving benchmark's p99-under-deadline claim gates like
        # the bitwise-identity booleans: flipping False is a regression.
        verdicts = _verdicts(
            {"serve": {"deadline_met": True}},
            {"serve": {"deadline_met": False}},
        )
        assert verdicts == {"serve.deadline_met": False}

    def test_false_baseline_boolean_is_not_gating(self):
        verdicts = _verdicts({"x": {"identical": False}},
                             {"x": {"identical": True}})
        assert verdicts == {"x.identical": True}

    def test_times_skipped_unless_requested(self):
        baseline = {"epoch_ms": 10.0}
        current = {"epoch_ms": 100.0}
        assert _verdicts(baseline, current) == {}
        verdicts = _verdicts(baseline, current, include_times=True)
        assert verdicts == {"epoch_ms": False}

    def test_baseline_only_keys_are_ignored(self):
        verdicts = _verdicts({"only_base": {"speedup": 2.0}}, {"other": 1})
        assert verdicts == {}

    def test_current_only_gated_key_is_announced_not_failed(self):
        """A gated-kind key the baseline lacks (first run of a brand-new
        benchmark) must surface as a non-fatal 'new' row — neither a
        failure (there is nothing to compare against) nor silence (the
        un-gated gap would be invisible until a baseline is committed)."""
        rows = list(check_trend.compare_file(
            {"other": 1}, {"only_cur": {"speedup": 1.5, "identical": True}},
            0.2, False,
        ))
        assert rows == [
            ("only_cur.identical", "new", None, True, True),
            ("only_cur.speedup", "new", None, 1.5, True),
        ]

    def test_current_only_ungated_keys_stay_silent(self):
        # Non-gated kinds (plain counters, times without --include-times)
        # are protocol growth, not missing baselines.
        rows = list(check_trend.compare_file(
            {}, {"req_count": 100, "epoch_ms": 3.0}, 0.2, False,
        ))
        assert rows == []
        rows = list(check_trend.compare_file(
            {}, {"epoch_ms": 3.0}, 0.2, True,
        ))
        assert rows == [("epoch_ms", "new", None, 3.0, True)]

    def test_nested_backend_sections_compare_leaf_by_leaf(self):
        baseline = {"prefetch[scipy]": {"speedup": 1.0},
                    "blocked[vectorized]": {"speedup": 4.0}}
        current = {"prefetch[scipy]": {"speedup": 1.02}}
        verdicts = _verdicts(baseline, current)
        assert verdicts == {"prefetch[scipy].speedup": True}

    def test_parity_gates_drift_from_one_in_both_directions(self):
        baseline = {"accuracy_parity": 0.998}
        assert _verdicts(baseline, {"accuracy_parity": 1.05}) == {
            "accuracy_parity": True
        }
        assert _verdicts(baseline, {"accuracy_parity": 0.7}) == {
            "accuracy_parity": False
        }
        # Drift *above* 1.0 is just as fatal — parity is best at 1.0,
        # not higher-is-better.
        assert _verdicts(baseline, {"accuracy_parity": 1.3}) == {
            "accuracy_parity": False
        }

    def test_parity_ignores_the_noise_floor(self):
        """A healthy parity baseline sits near 1.0 — exactly where the
        higher-is-better noise band would exempt it — so the floor must
        not apply."""
        rows = list(check_trend.compare_file(
            {"accuracy_parity": 1.0}, {"accuracy_parity": 0.5}, 0.2, False,
            noise_floor=1.15,
        ))
        assert rows == [("accuracy_parity", "parity", 1.0, 0.5, False)]

    def test_noise_floor_reports_but_never_gates_small_ratios(self):
        """A ~1.0x baseline (a path only asserted 'does not regress') must
        not flake CI when a smoke run on another host wobbles below the
        tolerance; it keeps its own in-benchmark floor instead."""
        rows = list(check_trend.compare_file(
            {"speedup": 1.05}, {"speedup": 0.5}, 0.2, False,
            noise_floor=1.15,
        ))
        assert rows == [("speedup", "ratio-info", 1.05, 0.5, True)]
        # Above the floor, gating is strict again.
        rows = list(check_trend.compare_file(
            {"speedup": 1.5}, {"speedup": 0.5}, 0.2, False,
            noise_floor=1.15,
        ))
        assert rows == [("speedup", "ratio", 1.5, 0.5, False)]


class TestMain:
    def _write(self, directory, name, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(payload))

    def test_exit_zero_when_clean(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", {"speedup": 2.0})
        self._write(tmp_path / "cur", "BENCH_x.json", {"speedup": 2.1})
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 0

    def test_exit_one_on_regression(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", {"speedup": 2.0})
        self._write(tmp_path / "cur", "BENCH_x.json", {"speedup": 1.0})
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 1

    def test_missing_current_results_fail(self, tmp_path):
        (tmp_path / "cur").mkdir()
        assert check_trend.main([
            "--baseline", str(tmp_path),
            "--current", str(tmp_path / "cur"),
        ]) == 1

    def test_new_benchmark_without_baseline_passes(self, tmp_path, capsys):
        self._write(tmp_path / "cur", "BENCH_new.json", {"speedup": 1.0})
        (tmp_path / "base").mkdir()
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 0
        out = capsys.readouterr().out
        assert "new benchmark, baseline bootstrapped" in out

    def test_new_gated_key_in_existing_benchmark_is_announced(
        self, tmp_path, capsys
    ):
        self._write(tmp_path / "base", "BENCH_x.json", {"speedup": 2.0})
        self._write(tmp_path / "cur", "BENCH_x.json",
                    {"speedup": 2.1, "serve": {"identical": True}})
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 0
        out = capsys.readouterr().out
        assert "serve.identical" in out
        assert "new benchmark, baseline bootstrapped" in out

    def test_tolerance_flag_widens_the_floor(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", {"speedup": 2.0})
        self._write(tmp_path / "cur", "BENCH_x.json", {"speedup": 1.5})
        args = ["--baseline", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur")]
        assert check_trend.main(args) == 1
        assert check_trend.main(args + ["--tolerance", "0.30"]) == 0

    def test_corrupt_current_json_fails_with_clear_message(
        self, tmp_path, capsys
    ):
        self._write(tmp_path / "base", "BENCH_x.json", {"speedup": 2.0})
        (tmp_path / "cur").mkdir()
        # A benchmark run killed mid-write leaves a torn file; the gate
        # must fail it by name instead of crashing with a traceback.
        (tmp_path / "cur" / "BENCH_x.json").write_text('{"speedup": 2.')
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 1
        out = capsys.readouterr().out
        assert "BENCH_x.json" in out
        assert "corrupt or partially-written" in out

    def test_corrupt_baseline_json_fails_with_clear_message(
        self, tmp_path, capsys
    ):
        (tmp_path / "base").mkdir()
        (tmp_path / "base" / "BENCH_x.json").write_text("not json at all")
        self._write(tmp_path / "cur", "BENCH_x.json", {"speedup": 2.0})
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 1
        out = capsys.readouterr().out
        assert "re-generate the committed baseline" in out

    def test_step_summary_written_when_env_set(
        self, tmp_path, monkeypatch
    ):
        """CI runs (GITHUB_STEP_SUMMARY set) get a markdown gate table
        with one row per compared key: pass, FAIL, and bootstrapped rows
        all present."""
        self._write(tmp_path / "base", "BENCH_x.json",
                    {"speedup": 2.0, "identical": True})
        self._write(tmp_path / "cur", "BENCH_x.json",
                    {"speedup": 1.0, "identical": True,
                     "fresh": {"zero_stale": True}})
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 1
        text = summary.read_text()
        assert "## Benchmark trend gate" in text
        assert "| benchmark | key | kind | baseline | current | status |" \
            in text
        assert "**FAIL**" in text          # speedup 2.0 -> 1.0
        assert "| pass |" in text          # identical held
        assert "bootstrapped" in text      # fresh.zero_stale has no baseline
        assert "1 regression(s)" in text

    def test_step_summary_appends_instead_of_clobbering(
        self, tmp_path, monkeypatch
    ):
        self._write(tmp_path / "base", "BENCH_x.json", {"speedup": 2.0})
        self._write(tmp_path / "cur", "BENCH_x.json", {"speedup": 2.1})
        summary = tmp_path / "summary.md"
        summary.write_text("## Earlier step\n")
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 0
        text = summary.read_text()
        assert text.startswith("## Earlier step\n")
        assert "## Benchmark trend gate" in text
        assert "**passed**" in text

    def test_step_summary_not_written_outside_ci(
        self, tmp_path, monkeypatch
    ):
        self._write(tmp_path / "base", "BENCH_x.json", {"speedup": 2.0})
        self._write(tmp_path / "cur", "BENCH_x.json", {"speedup": 2.1})
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 0
        assert not (tmp_path / "summary.md").exists()

    def test_step_summary_names_corrupt_files(self, tmp_path, monkeypatch):
        self._write(tmp_path / "base", "BENCH_x.json", {"speedup": 2.0})
        (tmp_path / "cur").mkdir()
        (tmp_path / "cur" / "BENCH_x.json").write_text('{"speedup": 2.')
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert check_trend.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 1
        text = summary.read_text()
        assert "corrupt-current" in text
        assert "BENCH_x.json" in text

    def test_gate_all_overrides_the_noise_floor(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", {"speedup": 1.05})
        self._write(tmp_path / "cur", "BENCH_x.json", {"speedup": 0.5})
        args = ["--baseline", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur")]
        assert check_trend.main(args) == 0  # inside the noise floor
        assert check_trend.main(args + ["--gate-all"]) == 1
