"""Unit tests for optimizers and initialisers."""

import numpy as np
import pytest

from repro.tensor import SGD, Adam, Tensor, kaiming_uniform, xavier_uniform, zeros


def quadratic_loss(param: Tensor) -> Tensor:
    target = Tensor(np.array([3.0, -2.0, 0.5]))
    diff = param - target
    return (diff * diff).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        param = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        optimizer = SGD([param], lr=0.1)
        (param * param).sum().backward()
        optimizer.step()
        np.testing.assert_allclose(param.data, [0.8, 0.8])

    def test_momentum_accumulates(self):
        param = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        for _ in range(2):
            optimizer.zero_grad()
            (param * 1.0).sum().backward()
            optimizer.step()
        # Step 1: v=1 -> x=0.9; step 2: v=1.9 -> x=0.71.
        np.testing.assert_allclose(param.data, [0.71])

    def test_weight_decay(self):
        param = Tensor(np.array([2.0]), requires_grad=True)
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
        np.testing.assert_allclose(param.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_converges_on_quadratic(self):
        param = Tensor(np.zeros(3), requires_grad=True)
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0, 0.5], atol=1e-4)

    def test_skips_parameters_without_grad(self):
        param = Tensor(np.ones(2), requires_grad=True)
        SGD([param], lr=0.1).step()  # no backward ran; must not crash
        np.testing.assert_allclose(param.data, [1.0, 1.0])

    def test_rejects_bad_lr(self):
        param = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([param], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Tensor(np.zeros(3), requires_grad=True)
        optimizer = Adam([param], lr=0.05)
        for _ in range(500):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0, 0.5], atol=1e-3)

    def test_first_step_size_is_lr(self):
        """With bias correction the first Adam step is ~lr in magnitude."""
        param = Tensor(np.array([10.0]), requires_grad=True)
        optimizer = Adam([param], lr=0.01)
        optimizer.zero_grad()
        (param * 5.0).sum().backward()
        optimizer.step()
        assert param.data[0] == pytest.approx(10.0 - 0.01, rel=1e-4)

    def test_zero_grad_clears(self):
        param = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([param])
        (param.sum()).backward()
        optimizer.zero_grad()
        assert param.grad is None

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_rejects_non_trainable_tensor(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.ones(2))])


class TestInit:
    def test_xavier_bound(self):
        rng = np.random.default_rng(0)
        weight = xavier_uniform(64, 32, rng)
        bound = np.sqrt(6.0 / (64 + 32))
        assert weight.requires_grad
        assert np.abs(weight.data).max() <= bound

    def test_kaiming_bound(self):
        rng = np.random.default_rng(0)
        weight = kaiming_uniform(64, 32, rng)
        assert np.abs(weight.data).max() <= np.sqrt(6.0 / 64)

    def test_zeros(self):
        bias = zeros(8)
        assert bias.requires_grad
        np.testing.assert_array_equal(bias.data, np.zeros(8))
