"""Tests for segment autograd ops and the GAT extension layer."""

import numpy as np
import pytest

from repro.graphs import chain_of_cliques, sbm_graph, attach_classification_task
from repro.models import GATConv
from repro.tensor import (
    Adam,
    Tensor,
    cross_entropy,
    exp,
    leaky_relu,
    segment_max_values,
    segment_sum,
)
from tests.test_tensor import check_gradient


class TestSegmentSum:
    def test_forward_values(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        out = segment_sum(x, np.array([0, 1, 0]), 2)
        np.testing.assert_allclose(out.numpy(), [[6.0, 8.0], [3.0, 4.0]])

    def test_empty_segments_are_zero(self):
        x = Tensor(np.ones((2, 3)))
        out = segment_sum(x, np.array([2, 2]), 4)
        assert (out.numpy()[[0, 1, 3]] == 0).all()

    def test_backward_routes_to_rows(self):
        x = Tensor(np.ones((4, 2)), requires_grad=True)
        ids = np.array([0, 1, 1, 0])
        out = segment_sum(x, ids, 2)
        weights = np.array([[1.0, 2.0], [3.0, 4.0]])
        (out * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(x.grad, weights[ids])

    def test_gradient_finite_difference(self):
        ids = np.array([0, 2, 1, 2, 0])
        check_gradient(
            lambda x: (segment_sum(x, ids, 3) ** 2).sum(), (5, 3), seed=21
        )

    def test_1d_values(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]))
        out = segment_sum(x, np.array([1, 1, 0]), 2)
        np.testing.assert_allclose(out.numpy(), [3.0, 3.0])

    def test_validation(self):
        x = Tensor(np.ones((3, 2)))
        with pytest.raises(ValueError):
            segment_sum(x, np.array([0, 1]), 2)  # wrong length
        with pytest.raises(ValueError):
            segment_sum(x, np.array([0, 1, 5]), 2)  # out of range
        with pytest.raises(ValueError):
            segment_sum(x, np.array([0, 1, 1]), 0)


class TestSegmentMax:
    def test_values(self):
        out = segment_max_values(
            np.array([1.0, 5.0, -2.0, 3.0]), np.array([0, 0, 1, 1]), 2
        )
        np.testing.assert_allclose(out, [5.0, 3.0])

    def test_empty_segment_zero(self):
        out = segment_max_values(np.array([1.0]), np.array([1]), 3)
        assert out[0] == 0.0 and out[2] == 0.0


class TestPointwise:
    def test_exp_gradient(self):
        check_gradient(lambda x: exp(x).sum(), (4, 3), seed=22)

    def test_exp_clip_stays_finite(self):
        out = exp(Tensor(np.array([1000.0])))
        assert np.isfinite(out.numpy()).all()

    def test_leaky_relu_values(self):
        x = Tensor(np.array([-2.0, 3.0]))
        np.testing.assert_allclose(
            leaky_relu(x, 0.1).numpy(), [-0.2, 3.0]
        )

    def test_leaky_relu_gradient(self):
        check_gradient(
            lambda x: (leaky_relu(x, 0.2) * 2.0).sum(), (5,), seed=23
        )

    def test_leaky_relu_validation(self):
        with pytest.raises(ValueError):
            leaky_relu(Tensor(np.ones(2)), -0.5)


class TestGATConv:
    @pytest.fixture
    def graph(self):
        return chain_of_cliques(3, 4)

    def test_output_shape(self, graph):
        rng = np.random.default_rng(0)
        layer = GATConv(graph, 6, 10, rng)
        out = layer(Tensor(rng.normal(size=(graph.n_nodes, 6))))
        assert out.shape == (graph.n_nodes, 10)

    def test_attention_weights_normalise(self, graph):
        """Recompute alpha by hand: per-destination sums must be 1."""
        rng = np.random.default_rng(1)
        layer = GATConv(graph, 6, 8, rng, nonlinearity="none")
        x = Tensor(rng.normal(size=(graph.n_nodes, 6)))
        h = layer.linear(x)
        score = (
            (h * layer.attn_src).sum(axis=1).numpy()[graph.src]
            + (h * layer.attn_dst).sum(axis=1).numpy()[graph.dst]
        )
        score = np.where(score > 0, score, 0.2 * score)
        alpha = np.exp(score)
        sums = np.zeros(graph.n_nodes)
        np.add.at(sums, graph.dst, alpha)
        alpha = alpha / sums[graph.dst]
        grouped = np.zeros(graph.n_nodes)
        np.add.at(grouped, graph.dst, alpha)
        np.testing.assert_allclose(grouped[grouped > 0], 1.0)

    def test_gradients_flow_everywhere(self, graph):
        rng = np.random.default_rng(2)
        layer = GATConv(graph, 6, 8, rng, nonlinearity="maxk", k=3)
        x = Tensor(rng.normal(size=(graph.n_nodes, 6)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        for param in layer.parameters():
            assert param.grad is not None
            assert np.isfinite(param.grad).all()

    def test_maxk_sparsifies_aggregation_input(self, graph):
        rng = np.random.default_rng(3)
        layer = GATConv(graph, 6, 12, rng, nonlinearity="maxk", k=4)
        x = Tensor(rng.normal(size=(graph.n_nodes, 6)))
        h = layer._activate(layer.linear(x))
        assert ((h.numpy() != 0).sum(axis=1) <= 4).all()

    def test_gat_trains_on_classification(self):
        graph = sbm_graph(120, 4, 8.0, intra_fraction=0.7, seed=6).to_undirected()
        attach_classification_task(graph, n_features=8, signal=0.6, seed=6)
        rng = np.random.default_rng(0)
        layer = GATConv(graph, 8, 4, rng, nonlinearity="maxk", k=2)
        optimizer = Adam(list(layer.parameters()), lr=0.02)
        first_loss = last_loss = None
        for _ in range(40):
            optimizer.zero_grad()
            logits = layer(Tensor(graph.features))
            loss = cross_entropy(logits, graph.labels, graph.train_mask)
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
            last_loss = loss.item()
        assert last_loss < first_loss

    def test_validation(self, graph):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GATConv(graph, 6, 8, rng, nonlinearity="maxk")  # missing k
        with pytest.raises(ValueError):
            GATConv(graph, 6, 8, rng, nonlinearity="softmax")
