"""Validate the example applications (compile + structure + fast paths)."""

import importlib.util
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_seven_examples_ship(self):
        assert len(EXAMPLE_FILES) >= 7

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_has_main_and_docstring(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None)), path.stem
        assert module.__doc__ and "Run:" in module.__doc__

    def test_quickstart_helpers_work_small(self):
        """Exercise the quickstart's training helper at reduced size."""
        quickstart = load_example(EXAMPLES_DIR / "quickstart.py")
        from repro.graphs import TRAINING_CONFIGS, load_training_dataset
        import dataclasses

        cfg = dataclasses.replace(TRAINING_CONFIGS["Flickr"], epochs=5)
        graph = load_training_dataset("Flickr")
        result = quickstart.train_variant(graph, cfg, "maxk", k=8)
        assert 0.0 <= result.test_at_best_val <= 1.0

    def test_multigpu_example_model_path(self):
        """The multi-GPU example's model composes without running main()."""
        from repro.gpusim import A100, MultiGpuEpochModel, partition_stats
        from repro.graphs import bfs_partition, load_kernel_graph

        graph = load_kernel_graph("pubmed", seed=0)
        stats = partition_stats(graph, bfs_partition(graph, 2, seed=0))
        model = MultiGpuEpochModel(
            stats.scaled(10, 10), hidden=256, n_layers=3, device=A100
        )
        assert model.speedup(16) > 0

    def test_ascii_plot_shape(self, capsys):
        approximator = load_example(EXAMPLES_DIR / "universal_approximator.py")
        import numpy as np

        xs = np.linspace(-1, 1, 30)
        approximator.ascii_plot(xs, xs ** 2, xs ** 2, height=5)
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 7  # title + 5 rows + axis
