"""Quickstart: train a MaxK-GNN next to its ReLU baseline in ~30 seconds.

Builds a small community graph, trains GraphSAGE with the ReLU baseline and
with the MaxK nonlinearity, and reports test accuracy plus the modelled
training speedup MaxK's SpGEMM/SSpMM kernels would deliver on an A100.

Run:  python examples/quickstart.py
"""

from repro.experiments.common import epoch_model_for, scaled_k
from repro.graphs import TRAINING_CONFIGS, load_training_dataset
from repro.models import GNNConfig, MaxKGNN
from repro.training import Engine, FullGraphFlow


def train_variant(graph, cfg, nonlinearity, k=None, seed=0):
    config = GNNConfig(
        model_type="sage",
        in_features=cfg.n_features,
        hidden=cfg.hidden,
        out_features=graph.label_dim(),
        n_layers=cfg.layers,
        nonlinearity=nonlinearity,
        k=k,
        dropout=cfg.dropout,
    )
    engine = Engine(
        MaxKGNN(graph, config, seed=seed), graph, FullGraphFlow(), lr=cfg.lr
    )
    return engine.fit(cfg.epochs, eval_every=20)


def main():
    dataset = "Flickr"
    cfg = TRAINING_CONFIGS[dataset]
    graph = load_training_dataset(dataset)
    print(f"dataset: {dataset} (scaled) — {graph.summary()}")

    paper_k = 32  # at the paper's hidden width 256
    k = scaled_k(paper_k, cfg)

    relu = train_variant(graph, cfg, "relu")
    maxk = train_variant(graph, cfg, "maxk", k=k)

    print(f"\nReLU baseline  test accuracy: {relu.test_at_best_val:.3f}")
    print(f"MaxK (k={paper_k} @ paper scale) test accuracy: "
          f"{maxk.test_at_best_val:.3f}")

    cost_model = epoch_model_for(dataset, "sage")
    print(
        f"\nModelled A100 epoch speedup at k={paper_k}: "
        f"{cost_model.speedup(paper_k):.2f}x vs DGL/cuSPARSE "
        f"(Amdahl limit {cost_model.amdahl_limit():.2f}x)"
    )


if __name__ == "__main__":
    main()
