"""Fig. 4 demo: MaxK MLPs are universal approximators.

Trains one-hidden-layer MLPs with MaxK (top ceil(hidden/4) selection) and
ReLU on y = x^2 across hidden widths and prints the held-out approximation
error, plus an ASCII sketch of the learned MaxK fit at the widest setting.

Run:  python examples/universal_approximator.py
"""

import numpy as np

from repro.experiments import fig4_approximator
from repro.models import ApproximatorMLP, fit_function
from repro.tensor import Tensor


def ascii_plot(xs, ys_true, ys_fit, height=11):
    lo, hi = min(ys_true.min(), ys_fit.min()), max(ys_true.max(), ys_fit.max())
    span = max(hi - lo, 1e-9)
    rows = [[" "] * len(xs) for _ in range(height)]
    for col, (t, f) in enumerate(zip(ys_true, ys_fit)):
        rows[int((hi - t) / span * (height - 1))][col] = "."
        rows[int((hi - f) / span * (height - 1))][col] = "*"
    print("  y=x^2 ('.') vs MaxK MLP fit ('*'):")
    for row in rows:
        print("  |" + "".join(row))
    print("  +" + "-" * len(xs))


def main():
    result = fig4_approximator.run(hidden_sizes=[4, 8, 16, 32, 64], epochs=400)
    print(fig4_approximator.report(result))

    model = ApproximatorMLP(1, 64, 1, nonlinearity="maxk", seed=0)
    rng = np.random.default_rng(0)
    train_x = rng.uniform(-1, 1, size=(128, 1))
    fit_function(model, train_x, train_x ** 2, epochs=400)
    xs = np.linspace(-1, 1, 60)[:, None]
    fit = model(Tensor(xs)).numpy().ravel()
    print()
    ascii_plot(xs.ravel(), xs.ravel() ** 2, fit)


if __name__ == "__main__":
    main()
