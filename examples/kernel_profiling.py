"""Kernel-level study: sweep k on one graph and inspect the memory system.

Reproduces the per-graph view behind Fig. 8 and Table 2: for a chosen
Table-1 graph it prints the modelled SpGEMM/SSpMM speedups across k, the
§4.3 traffic breakdown, and a cache-simulator profile of the three kernels.

Run:  python examples/kernel_profiling.py [graph-name]
      (default: Reddit; see repro.graphs.kernel_benchmark_names())
"""

import sys

from repro.experiments import table2_memory
from repro.experiments.common import K_VALUES
from repro.gpusim import (
    A100,
    SparsePattern,
    cusparse_spmm_cost,
    gnnadvisor_spmm_cost,
    spgemm_cost,
    sspmm_cost,
)
from repro.graphs import TABLE1_GRAPHS

DIM_ORIGIN = 256


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "Reddit"
    spec = TABLE1_GRAPHS[name]
    pattern = SparsePattern.from_spec(spec)
    print(
        f"{name}: {spec.n_nodes:,} nodes, {spec.n_edges:,} edges, "
        f"avg degree {spec.avg_degree:.1f}"
    )

    spmm = cusparse_spmm_cost(pattern, DIM_ORIGIN, A100)
    gnna = gnnadvisor_spmm_cost(pattern, DIM_ORIGIN, A100)
    print(
        f"\nbaselines: cuSPARSE SpMM {spmm.latency * 1e3:.2f} ms, "
        f"GNNAdvisor {gnna.latency * 1e3:.2f} ms"
    )

    print(f"\n{'k':>4} {'SpGEMM ms':>10} {'spd/cusp':>9} {'spd/gnna':>9} "
          f"{'SSpMM ms':>10} {'spd/cusp':>9} {'traffic cut':>11}")
    for k in K_VALUES:
        forward = spgemm_cost(pattern, DIM_ORIGIN, k, A100)
        backward = sspmm_cost(pattern, DIM_ORIGIN, k, A100)
        cut = 1.0 - forward.traffic.categories["cbsr_fetch"] / (
            spmm.traffic.categories["feature_fetch"]
        )
        print(
            f"{k:>4} {forward.latency * 1e3:>10.2f} "
            f"{spmm.latency / forward.latency:>9.2f} "
            f"{gnna.latency / forward.latency:>9.2f} "
            f"{backward.latency * 1e3:>10.2f} "
            f"{spmm.latency / backward.latency:>9.2f} "
            f"{cut:>10.1%}"
        )

    print("\nCache-simulator profile (scaled stand-in, k = 32):")
    print(table2_memory.report(table2_memory.run(dataset=name)))


if __name__ == "__main__":
    main()
