"""§6 extension: MaxK as a regular-sparsity nonlinearity beyond GNNs.

Trains deep MLP classifiers with ReLU and MaxK on a Gaussian-blob task and
reports (i) accuracy parity and (ii) the input-fetch traffic a CBSR-based
dense-layer kernel would save — the dense-layer analogue of the paper's
§4.3 SpGEMM reduction.

Run:  python examples/maxk_beyond_gnns.py
"""

import numpy as np

from repro.models import (
    MaxKMLPClassifier,
    mlp_feature_traffic_cut,
    train_mlp_classifier,
)


def make_blobs(n_per_class=60, n_classes=5, n_features=16, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=2.5, size=(n_classes, n_features))
    inputs = np.concatenate(
        [centers[c] + rng.normal(size=(n_per_class, n_features))
         for c in range(n_classes)]
    )
    labels = np.repeat(np.arange(n_classes), n_per_class)
    return inputs, labels


def main():
    inputs, labels = make_blobs()
    hidden = 64
    print(f"5-class blobs, {len(labels)} samples, MLP hidden={hidden}, 2 layers\n")

    relu = MaxKMLPClassifier(16, hidden, 5, n_layers=2, nonlinearity="relu",
                             seed=0)
    relu_acc = train_mlp_classifier(relu, inputs, labels, epochs=150)
    print(f"{'ReLU':>10}: train acc {relu_acc:.3f}")

    for k in (32, 16, 8, 4):
        model = MaxKMLPClassifier(16, hidden, 5, n_layers=2,
                                  nonlinearity="maxk", k=k, seed=0)
        accuracy = train_mlp_classifier(model, inputs, labels, epochs=150)
        cut = mlp_feature_traffic_cut(hidden, k, len(labels))
        print(f"{'MaxK k=' + str(k):>10}: train acc {accuracy:.3f}  "
              f"(dense-layer input-fetch traffic cut: {cut:.1%})")

    print("\nModerate k matches ReLU while a CBSR dense-layer kernel would "
          "fetch a fraction of the activation traffic — the paper's §6 "
          "extension direction.")


if __name__ == "__main__":
    main()
