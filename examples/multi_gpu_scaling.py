"""Multi-GPU partition-parallel scaling study (BNS-GCN composition).

Models P-way partition-parallel training of MaxK-GNN on a Reddit-scale
workload: per-GPU kernel time from the calibrated cost models, boundary
feature exchange over NVLink, and BNS-style boundary sampling. Shows the
MaxK speedup surviving under partitioning and the CBSR format shrinking the
communication volume.

Run:  python examples/multi_gpu_scaling.py
"""

from repro.gpusim import A100, MultiGpuEpochModel, partition_stats
from repro.graphs import TABLE1_GRAPHS, bfs_partition, load_kernel_graph


def main():
    graph = load_kernel_graph("Reddit", seed=0)
    spec = TABLE1_GRAPHS["Reddit"]
    node_factor = spec.n_nodes / graph.n_nodes
    edge_factor = spec.n_edges / graph.n_edges
    print(
        f"Reddit-scale workload via scaled stand-in "
        f"({graph.n_nodes} nodes x {node_factor:.0f}, "
        f"{graph.n_edges} edges x {edge_factor:.0f})\n"
    )

    header = (
        f"{'GPUs':>4} {'halo':>6} {'baseline ms':>12} {'maxk k=32 ms':>13} "
        f"{'speedup':>8} {'comm% base':>10} {'comm% maxk':>10}"
    )
    print(header)
    for n_gpus in (2, 4, 8):
        stats = partition_stats(graph, bfs_partition(graph, n_gpus, seed=0))
        scaled = stats.scaled(node_factor, edge_factor)
        for halo in (1.0, 0.1):
            model = MultiGpuEpochModel(
                scaled, hidden=256, n_layers=4, device=A100,
                boundary_fraction=halo,
            )
            print(
                f"{n_gpus:>4} {halo:>6.1f} "
                f"{model.baseline_epoch() * 1e3:>12.2f} "
                f"{model.maxk_epoch(32) * 1e3:>13.2f} "
                f"{model.speedup(32):>8.2f} "
                f"{model.communication_fraction():>10.1%} "
                f"{model.communication_fraction(32):>10.1%}"
            )

    print(
        "\nMaxK's ~2.6x epoch speedup persists across GPU counts; CBSR "
        "boundary rows (5k+4k bytes vs 2·4·dim) and BNS sampling (halo 0.1) "
        "both shrink the communication share."
    )


if __name__ == "__main__":
    main()
