"""Full-batch GraphSAGE on the scaled Reddit stand-in: the paper's headline.

Trains the ReLU baseline and MaxK variants at several k, prints convergence
snapshots (Fig. 10 style) and the Fig.-9 system view: modelled speedup per k
against the Amdahl limit at the paper's full Reddit configuration.

Run:  python examples/reddit_training.py
"""

from repro.experiments.common import epoch_model_for, scaled_k
from repro.graphs import TRAINING_CONFIGS, load_training_dataset
from repro.models import GNNConfig, MaxKGNN
from repro.training import Trainer

PAPER_K_VALUES = [64, 32, 16]


def main():
    dataset = "Reddit"
    cfg = TRAINING_CONFIGS[dataset]
    graph = load_training_dataset(dataset)
    print(f"{dataset} (scaled): {graph.summary()}")
    out_features = int(graph.labels.max()) + 1

    def run(nonlinearity, k=None, label="relu"):
        config = GNNConfig(
            model_type="sage", in_features=cfg.n_features, hidden=cfg.hidden,
            out_features=out_features, n_layers=cfg.layers,
            nonlinearity=nonlinearity, k=k, dropout=cfg.dropout,
        )
        trainer = Trainer(MaxKGNN(graph, config, seed=0), graph, lr=cfg.lr)
        result = trainer.fit(cfg.epochs, eval_every=20)
        curve = " ".join(
            f"e{e}:{m:.2f}" for e, m in
            zip(result.epochs_recorded, result.test_metrics)
        )
        print(f"{label:>10}: test={result.test_at_best_val:.3f}  [{curve}]")
        return result

    print("\nconvergence (test accuracy snapshots):")
    run("relu", label="relu")
    for paper_k in PAPER_K_VALUES:
        run("maxk", k=scaled_k(paper_k, cfg), label=f"maxk k={paper_k}")

    cost_model = epoch_model_for(dataset, "sage")
    limit = cost_model.amdahl_limit()
    limit_gnna = cost_model.amdahl_limit("gnnadvisor")
    print(
        f"\nA100 system model (paper config: {cfg.paper_layers} layers, "
        f"hidden {cfg.paper_hidden}):"
    )
    print(f"Amdahl limit: {limit:.2f}x vs cuSPARSE, {limit_gnna:.2f}x vs GNNAdvisor")
    for paper_k in PAPER_K_VALUES:
        print(
            f"  k={paper_k:>3}: speedup {cost_model.speedup(paper_k):.2f}x "
            f"(cuSPARSE) / {cost_model.speedup(paper_k, 'gnnadvisor'):.2f}x "
            f"(GNNAdvisor)"
        )
    print("paper Table 5: k=32 -> 2.16x/2.84x, k=16 -> 3.22x/4.24x")


if __name__ == "__main__":
    main()
