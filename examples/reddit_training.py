"""GraphSAGE on the scaled Reddit stand-in: full-batch vs sampled flows.

Trains the ReLU baseline and MaxK variants at several k through the
execution engine, prints convergence snapshots (Fig. 10 style), then
re-trains the headline MaxK model with the sampled mini-batch flow
(GraphSAINT regime) to show the engine reaching comparable accuracy at a
lower per-epoch cost. Closes with the Fig.-9 system view: modelled
speedup per k against the Amdahl limit at the paper's full Reddit
configuration.

Run:  python examples/reddit_training.py
"""

import time

from repro.experiments.common import epoch_model_for, scaled_k
from repro.graphs import TRAINING_CONFIGS, load_training_dataset
from repro.models import GNNConfig, MaxKGNN
from repro.training import Engine, FullGraphFlow, SampledFlow

PAPER_K_VALUES = [64, 32, 16]


def main():
    dataset = "Reddit"
    cfg = TRAINING_CONFIGS[dataset]
    graph = load_training_dataset(dataset)
    print(f"{dataset} (scaled): {graph.summary()}")
    out_features = graph.label_dim()

    def config_for(nonlinearity, k=None):
        return GNNConfig(
            model_type="sage", in_features=cfg.n_features, hidden=cfg.hidden,
            out_features=out_features, n_layers=cfg.layers,
            nonlinearity=nonlinearity, k=k, dropout=cfg.dropout,
        )

    def run(nonlinearity, k=None, label="relu", flow=None):
        engine = Engine(
            MaxKGNN(graph, config_for(nonlinearity, k), seed=0), graph,
            flow or FullGraphFlow(), lr=cfg.lr,
        )
        start = time.perf_counter()
        result = engine.fit(cfg.epochs, eval_every=20)
        per_epoch = 1e3 * (time.perf_counter() - start) / cfg.epochs
        curve = " ".join(
            f"e{e}:{m:.2f}" for e, m in
            zip(result.epochs_recorded, result.test_metrics)
        )
        print(f"{label:>14}: test={result.test_at_best_val:.3f}  "
              f"{per_epoch:5.1f} ms/epoch  [{curve}]")
        return result

    print("\nconvergence (test accuracy snapshots):")
    run("relu", label="relu")
    for paper_k in PAPER_K_VALUES:
        run("maxk", k=scaled_k(paper_k, cfg), label=f"maxk k={paper_k}")

    print("\nsampled mini-batch flow (GraphSAINT regime, same engine):")
    sampled_flow = SampledFlow(
        sampler="node", batches_per_epoch=2,
        sample_size=graph.n_nodes // 3, pool_size=8, seed=0,
    )
    run("maxk", k=scaled_k(32, cfg), label="maxk sampled", flow=sampled_flow)

    cost_model = epoch_model_for(dataset, "sage")
    limit = cost_model.amdahl_limit()
    limit_gnna = cost_model.amdahl_limit("gnnadvisor")
    print(
        f"\nA100 system model (paper config: {cfg.paper_layers} layers, "
        f"hidden {cfg.paper_hidden}):"
    )
    print(f"Amdahl limit: {limit:.2f}x vs cuSPARSE, {limit_gnna:.2f}x vs GNNAdvisor")
    for paper_k in PAPER_K_VALUES:
        print(
            f"  k={paper_k:>3}: speedup {cost_model.speedup(paper_k):.2f}x "
            f"(cuSPARSE) / {cost_model.speedup(paper_k, 'gnnadvisor'):.2f}x "
            f"(GNNAdvisor)"
        )
    print("paper Table 5: k=32 -> 2.16x/2.84x, k=16 -> 3.22x/4.24x")


if __name__ == "__main__":
    main()
