"""MaxK-GNN composed with partition-parallel and sampled training.

The paper (§1) notes the MaxK constructs align with graph partitioning
(BNS-GCN) and graph sampling (GraphSAINT). This example trains the same
MaxK GraphSAGE three ways on the scaled ogbn-products stand-in:

* full-batch (the paper's main setting),
* BNS-GCN-style partitioned training with sampled boundary halos,
* GraphSAINT-style random-node subgraph training,

and compares final test accuracy.

Run:  python examples/partitioned_training.py
"""

from repro.graphs import TRAINING_CONFIGS, bfs_partition, load_training_dataset
from repro.models import GNNConfig, MaxKGNN
from repro.training import PartitionedTrainer, SampledTrainer, Trainer


def main():
    dataset = "ogbn-products"
    cfg = TRAINING_CONFIGS[dataset]
    graph = load_training_dataset(dataset)
    config = GNNConfig(
        model_type="sage", in_features=cfg.n_features, hidden=cfg.hidden,
        out_features=int(graph.labels.max()) + 1, n_layers=cfg.layers,
        nonlinearity="maxk", k=16, dropout=cfg.dropout,
    )
    print(f"{dataset} (scaled): {graph.summary()}  |  MaxK k=16, hidden {cfg.hidden}")

    full = Trainer(MaxKGNN(graph, config, seed=0), graph, lr=cfg.lr)
    full_result = full.fit(cfg.epochs, eval_every=20)
    print(f"\nfull-batch:      test = {full_result.test_at_best_val:.3f}")

    partition = bfs_partition(graph, 4, seed=0)
    print(
        f"partition:       4 parts, sizes {partition.sizes().tolist()}, "
        f"edge cut {partition.edge_cut(graph)} / {graph.n_edges}"
    )
    partitioned = PartitionedTrainer(
        graph, config, n_parts=4, boundary_fraction=0.3, lr=cfg.lr, seed=0
    )
    part_result = partitioned.fit(rounds=8, epochs_per_part=4)
    print(f"BNS-partitioned: test = {part_result.test_metric:.3f} "
          f"(subgraphs of ~{int(sum(part_result.subgraph_sizes) / len(part_result.subgraph_sizes))} nodes)")

    sampled = SampledTrainer(
        graph, config, sample_size=graph.n_nodes // 2, lr=cfg.lr, seed=0
    )
    sample_result = sampled.fit(rounds=16, epochs_per_sample=4)
    print(f"SAINT-sampled:   test = {sample_result.test_metric:.3f}")

    print("\nMaxK composes with both methods: sampled/partitioned variants "
          "approach the full-batch accuracy while touching smaller adjacencies.")


if __name__ == "__main__":
    main()
