"""MaxK-GNN through the engine's partitioned and sampled data flows.

The paper (§1) notes the MaxK constructs align with graph partitioning
(BNS-GCN) and graph sampling (GraphSAINT). This example trains the same
MaxK GraphSAGE three ways on the scaled ogbn-products stand-in — all
through one :class:`repro.training.Engine`, swapping only the data flow:

* :class:`FullGraphFlow` (the paper's main setting),
* :class:`PartitionedFlow` — BNS-GCN partitions with sampled halos,
* :class:`SampledFlow` — GraphSAINT-style random-node subgraph batches,

and compares final test accuracy.

Run:  python examples/partitioned_training.py
"""

from repro.graphs import TRAINING_CONFIGS, load_training_dataset
from repro.models import GNNConfig, MaxKGNN
from repro.training import Engine, FullGraphFlow, PartitionedFlow, SampledFlow


def main():
    dataset = "ogbn-products"
    cfg = TRAINING_CONFIGS[dataset]
    graph = load_training_dataset(dataset)
    config = GNNConfig(
        model_type="sage", in_features=cfg.n_features, hidden=cfg.hidden,
        out_features=graph.label_dim(), n_layers=cfg.layers,
        nonlinearity="maxk", k=16, dropout=cfg.dropout,
    )
    print(f"{dataset} (scaled): {graph.summary()}  |  MaxK k=16, hidden {cfg.hidden}")

    def run(flow, epochs, steps_per_batch=1):
        engine = Engine(MaxKGNN(graph, config, seed=0), graph, flow, lr=cfg.lr)
        return engine.fit(
            epochs, eval_every=max(epochs // 4, 1),
            steps_per_batch=steps_per_batch,
        )

    full = run(FullGraphFlow(), cfg.epochs)
    print(f"\nfull-batch:      test = {full.test_at_best_val:.3f}")

    partitioned_flow = PartitionedFlow(n_parts=4, boundary_fraction=0.3, seed=0)
    partition = partitioned_flow.partition_for(graph)
    print(
        f"partition:       4 parts, sizes {partition.sizes().tolist()}, "
        f"edge cut {partition.edge_cut(graph)} / {graph.n_edges}"
    )
    part = run(partitioned_flow, epochs=8, steps_per_batch=4)
    sizes = part.batch_sizes
    print(f"BNS-partitioned: test = {part.test_at_best_val:.3f} "
          f"(subgraphs of ~{int(sum(sizes) / len(sizes))} nodes)")

    # GraphSAINT regime: half-graph batches make each epoch ~4x cheaper in
    # aggregation work, so the sampled run takes many more (cheap) epochs.
    sampled_flow = SampledFlow(
        sampler="node", sample_size=graph.n_nodes // 2, pool_size=8, seed=0
    )
    sampled = run(sampled_flow, epochs=2 * cfg.epochs)
    print(f"SAINT-sampled:   test = {sampled.test_at_best_val:.3f}")

    print("\nMaxK composes with both methods: one engine, one parameter set, "
          "three batch streams — the sampled/partitioned flows approach the "
          "full-batch accuracy while touching smaller adjacencies.")


if __name__ == "__main__":
    main()
